// Package weighted implements weighted datasets: the data model of wPINQ.
//
// A weighted dataset generalizes a multiset to a function A : D -> R mapping
// each record to a real-valued weight ("Calibrating Data to Sensitivity in
// Private Data Analysis", Section 2.1). The package also provides the
// reference, from-scratch semantics of every stable transformation defined
// by the paper (Select, Where, SelectMany, GroupBy, Shave, Join, Union,
// Intersect, Concat, Except). These functions are the executable
// specification against which the incremental engine
// (wpinq/internal/incremental) is verified.
package weighted

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the tolerance below which weights are treated as zero. Transform
// outputs drop records whose weight magnitude falls below Eps, so that long
// chains of floating-point arithmetic do not accumulate ghost records.
const Eps = 1e-12

// Dataset is a weighted dataset: a finitely-supported function from records
// of type T to real-valued weights. The zero value is ready to use.
//
// Dataset is not safe for concurrent mutation.
type Dataset[T comparable] struct {
	w map[T]float64
}

// New returns an empty dataset.
func New[T comparable]() *Dataset[T] {
	return &Dataset[T]{w: make(map[T]float64)}
}

// NewSized returns an empty dataset with capacity for n records.
func NewSized[T comparable](n int) *Dataset[T] {
	return &Dataset[T]{w: make(map[T]float64, n)}
}

// FromMap builds a dataset from a record->weight map. The map is copied.
func FromMap[T comparable](m map[T]float64) *Dataset[T] {
	d := NewSized[T](len(m))
	for x, w := range m {
		d.Add(x, w)
	}
	return d
}

// FromItems builds a dataset in which each listed record has weight 1.0.
// Repeated records accumulate.
func FromItems[T comparable](items ...T) *Dataset[T] {
	d := NewSized[T](len(items))
	for _, x := range items {
		d.Add(x, 1)
	}
	return d
}

// Pair couples a record with a weight, for bulk construction and iteration.
type Pair[T comparable] struct {
	Record T
	Weight float64
}

// FromPairs builds a dataset from explicit (record, weight) pairs.
// Repeated records accumulate.
func FromPairs[T comparable](pairs ...Pair[T]) *Dataset[T] {
	d := NewSized[T](len(pairs))
	for _, p := range pairs {
		d.Add(p.Record, p.Weight)
	}
	return d
}

// ensure initializes the backing map of a zero-value Dataset.
func (d *Dataset[T]) ensure() {
	if d.w == nil {
		d.w = make(map[T]float64)
	}
}

// Weight returns A(x): the weight of record x, zero if absent.
func (d *Dataset[T]) Weight(x T) float64 {
	if d == nil || d.w == nil {
		return 0
	}
	return d.w[x]
}

// Add adds delta to the weight of x, removing the record if the result is
// negligibly small. Negative deltas (and negative resulting weights) are
// permitted: differences of datasets are themselves weighted datasets.
func (d *Dataset[T]) Add(x T, delta float64) {
	d.ensure()
	nw := d.w[x] + delta
	if math.Abs(nw) < Eps {
		delete(d.w, x)
		return
	}
	d.w[x] = nw
}

// Set assigns the weight of x, removing the record when the weight is
// negligibly small.
func (d *Dataset[T]) Set(x T, w float64) {
	d.ensure()
	if math.Abs(w) < Eps {
		delete(d.w, x)
		return
	}
	d.w[x] = w
}

// Remove deletes the record x entirely (equivalent to Set(x, 0)).
func (d *Dataset[T]) Remove(x T) {
	if d.w != nil {
		delete(d.w, x)
	}
}

// Len returns the number of records with non-zero weight.
func (d *Dataset[T]) Len() int {
	if d == nil {
		return 0
	}
	return len(d.w)
}

// Norm returns ||A|| = sum_x |A(x)|, the size of the dataset.
func (d *Dataset[T]) Norm() float64 {
	if d == nil {
		return 0
	}
	var n float64
	for _, w := range d.w {
		n += math.Abs(w)
	}
	return n
}

// Total returns sum_x A(x) (signed), the total mass of the dataset. For
// non-negative datasets Total equals Norm.
func (d *Dataset[T]) Total() float64 {
	if d == nil {
		return 0
	}
	var n float64
	for _, w := range d.w {
		n += w
	}
	return n
}

// Range calls f for every record with non-zero weight. Iteration order is
// unspecified. f must not mutate the dataset.
func (d *Dataset[T]) Range(f func(x T, w float64)) {
	if d == nil {
		return
	}
	for x, w := range d.w {
		f(x, w)
	}
}

// Records returns the records with non-zero weight, in unspecified order.
func (d *Dataset[T]) Records() []T {
	if d == nil {
		return nil
	}
	out := make([]T, 0, len(d.w))
	for x := range d.w {
		out = append(out, x)
	}
	return out
}

// Pairs returns all (record, weight) pairs, in unspecified order.
func (d *Dataset[T]) Pairs() []Pair[T] {
	if d == nil {
		return nil
	}
	out := make([]Pair[T], 0, len(d.w))
	for x, w := range d.w {
		out = append(out, Pair[T]{x, w})
	}
	return out
}

// PairsSorted returns all (record, weight) pairs in a deterministic
// order: sorted by the records' fmt.Sprint rendering, which is injective
// for the record types wPINQ queries produce (ints and structs/arrays of
// ints). The reference transformations iterate in this order so their
// floating-point accumulations — and therefore released measurement
// bytes — are a pure function of the dataset, not of map iteration
// order. The sort costs O(n log n) string comparisons; it is paid on the
// one-shot measurement path, never inside the incremental engines.
func (d *Dataset[T]) PairsSorted() []Pair[T] {
	pairs := d.Pairs()
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = fmt.Sprint(p.Record)
	}
	sort.Sort(&pairsByKey[T]{pairs: pairs, keys: keys})
	return pairs
}

type pairsByKey[T comparable] struct {
	pairs []Pair[T]
	keys  []string
}

func (s *pairsByKey[T]) Len() int           { return len(s.pairs) }
func (s *pairsByKey[T]) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *pairsByKey[T]) Swap(i, j int) {
	s.pairs[i], s.pairs[j] = s.pairs[j], s.pairs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// RangeSorted calls f for every record in PairsSorted order.
func (d *Dataset[T]) RangeSorted(f func(x T, w float64)) {
	for _, p := range d.PairsSorted() {
		f(p.Record, p.Weight)
	}
}

// Clone returns a deep copy of the dataset.
func (d *Dataset[T]) Clone() *Dataset[T] {
	c := NewSized[T](d.Len())
	d.Range(func(x T, w float64) { c.w[x] = w })
	return c
}

// Reset removes every record while keeping the map's allocated capacity:
// the idiom for the reusable difference accumulators in the incremental
// and sharded engines' hot loops.
func (d *Dataset[T]) Reset() {
	clear(d.w)
}

// Scale multiplies every weight by s, in place, and returns the receiver.
func (d *Dataset[T]) Scale(s float64) *Dataset[T] {
	if d == nil {
		return d
	}
	if s == 0 {
		d.w = make(map[T]float64)
		return d
	}
	for x, w := range d.w {
		nw := w * s
		if math.Abs(nw) < Eps {
			delete(d.w, x)
			continue
		}
		d.w[x] = nw
	}
	return d
}

// AddAll adds every record of other (scaled by factor) into the receiver.
func (d *Dataset[T]) AddAll(other *Dataset[T], factor float64) {
	other.Range(func(x T, w float64) { d.Add(x, w*factor) })
}

// Distance returns ||A - B|| = sum_x |A(x) - B(x)|: the metric under which
// differential privacy for weighted datasets is defined (Definition 1).
func Distance[T comparable](a, b *Dataset[T]) float64 {
	var dist float64
	seen := make(map[T]struct{}, a.Len())
	a.Range(func(x T, w float64) {
		seen[x] = struct{}{}
		dist += math.Abs(w - b.Weight(x))
	})
	b.Range(func(x T, w float64) {
		if _, ok := seen[x]; !ok {
			dist += math.Abs(w)
		}
	})
	return dist
}

// Equal reports whether the two datasets assign every record the same weight
// within tolerance tol.
func Equal[T comparable](a, b *Dataset[T], tol float64) bool {
	ok := true
	a.Range(func(x T, w float64) {
		if math.Abs(w-b.Weight(x)) > tol {
			ok = false
		}
	})
	if !ok {
		return false
	}
	b.Range(func(x T, w float64) {
		if math.Abs(w-a.Weight(x)) > tol {
			ok = false
		}
	})
	return ok
}

// String renders the dataset as {(record, weight), ...} with records sorted
// by their formatted representation, for stable test output and debugging.
func (d *Dataset[T]) String() string {
	pairs := d.Pairs()
	sort.Slice(pairs, func(i, j int) bool {
		return fmt.Sprint(pairs[i].Record) < fmt.Sprint(pairs[j].Record)
	})
	var b strings.Builder
	b.WriteString("{")
	for i, p := range pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, %.4g)", p.Record, p.Weight)
	}
	b.WriteString("}")
	return b.String()
}
