package weighted

import (
	"math"
	"testing"
	"testing/quick"
)

// paperA and paperB are the running example datasets of Section 2.1:
//
//	A = {("1", 0.75), ("2", 2.0), ("3", 1.0)}
//	B = {("1", 3.0), ("4", 2.0)}
func paperA() *Dataset[string] {
	return FromPairs(Pair[string]{"1", 0.75}, Pair[string]{"2", 2.0}, Pair[string]{"3", 1.0})
}

func paperB() *Dataset[string] {
	return FromPairs(Pair[string]{"1", 3.0}, Pair[string]{"4", 2.0})
}

func TestWeightLookup(t *testing.T) {
	a := paperA()
	if got := a.Weight("2"); got != 2.0 {
		t.Errorf("A(2) = %v, want 2.0", got)
	}
	if got := a.Weight("0"); got != 0.0 {
		t.Errorf("A(0) = %v, want 0.0 for absent record", got)
	}
	b := paperB()
	if got := b.Weight("0"); got != 0.0 {
		t.Errorf("B(0) = %v, want 0.0", got)
	}
}

func TestNorm(t *testing.T) {
	if got, want := paperA().Norm(), 3.75; got != want {
		t.Errorf("||A|| = %v, want %v", got, want)
	}
	if got, want := paperB().Norm(), 5.0; got != want {
		t.Errorf("||B|| = %v, want %v", got, want)
	}
	neg := FromPairs(Pair[int]{1, -2.0}, Pair[int]{2, 3.0})
	if got, want := neg.Norm(), 5.0; got != want {
		t.Errorf("norm with negative weights = %v, want %v", got, want)
	}
	if got, want := neg.Total(), 1.0; got != want {
		t.Errorf("total with negative weights = %v, want %v", got, want)
	}
}

func TestAddAccumulatesAndCancels(t *testing.T) {
	d := New[string]()
	d.Add("x", 1.5)
	d.Add("x", 0.5)
	if got := d.Weight("x"); got != 2.0 {
		t.Errorf("accumulated weight = %v, want 2.0", got)
	}
	d.Add("x", -2.0)
	if got := d.Weight("x"); got != 0 {
		t.Errorf("cancelled weight = %v, want 0", got)
	}
	if d.Len() != 0 {
		t.Errorf("Len after cancellation = %d, want 0", d.Len())
	}
}

func TestZeroValueDatasetUsable(t *testing.T) {
	var d Dataset[int]
	if d.Weight(1) != 0 || d.Norm() != 0 || d.Len() != 0 {
		t.Fatal("zero-value dataset should behave as empty")
	}
	d.Add(1, 2.5)
	if d.Weight(1) != 2.5 {
		t.Errorf("weight after Add on zero value = %v, want 2.5", d.Weight(1))
	}
}

func TestSetAndRemove(t *testing.T) {
	d := New[int]()
	d.Set(7, 4.0)
	if d.Weight(7) != 4.0 {
		t.Errorf("Set: weight = %v, want 4.0", d.Weight(7))
	}
	d.Set(7, 0)
	if d.Len() != 0 {
		t.Errorf("Set to zero should remove; Len = %d", d.Len())
	}
	d.Set(8, 1)
	d.Remove(8)
	if d.Weight(8) != 0 {
		t.Error("Remove did not delete record")
	}
}

func TestDistance(t *testing.T) {
	a, b := paperA(), paperB()
	// ||A-B|| = |0.75-3| + |2-0| + |1-0| + |0-2| = 2.25 + 2 + 1 + 2 = 7.25
	if got, want := Distance(a, b), 7.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("||A-B|| = %v, want %v", got, want)
	}
	if got := Distance(a, a.Clone()); got != 0 {
		t.Errorf("||A-A|| = %v, want 0", got)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(aw, bw []float64) bool {
		a, b := fromWeights(aw), fromWeights(bw)
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(aw, bw, cw []float64) bool {
		a, b, c := fromWeights(aw), fromWeights(bw), fromWeights(cw)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := paperA()
	c := a.Clone()
	c.Add("1", 10)
	if a.Weight("1") != 0.75 {
		t.Error("mutating clone affected original")
	}
}

func TestScale(t *testing.T) {
	a := paperA().Scale(2)
	if got := a.Weight("2"); got != 4.0 {
		t.Errorf("scaled weight = %v, want 4.0", got)
	}
	a.Scale(0)
	if a.Len() != 0 {
		t.Error("Scale(0) should empty the dataset")
	}
}

func TestEqualTolerance(t *testing.T) {
	a := paperA()
	b := paperA()
	b.Add("1", 1e-10)
	if !Equal(a, b, 1e-9) {
		t.Error("datasets within tolerance should be Equal")
	}
	if Equal(a, paperB(), 1e-9) {
		t.Error("distinct datasets reported Equal")
	}
}

func TestFromItemsAccumulates(t *testing.T) {
	d := FromItems("a", "b", "a")
	if d.Weight("a") != 2.0 || d.Weight("b") != 1.0 {
		t.Errorf("FromItems weights = %v, %v; want 2, 1", d.Weight("a"), d.Weight("b"))
	}
}

func TestStringDeterministic(t *testing.T) {
	a := FromPairs(Pair[string]{"b", 1}, Pair[string]{"a", 2})
	want := "{(a, 2), (b, 1)}"
	if got := a.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// fromWeights builds a dataset over small integer records from a weight
// slice, truncating extreme values so property tests stay numerically sane.
func fromWeights(ws []float64) *Dataset[int] {
	d := New[int]()
	for i, w := range ws {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			continue
		}
		// Bound magnitudes to keep products representable.
		w = math.Mod(w, 100)
		d.Add(i%8, w)
	}
	return d
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200}
}
