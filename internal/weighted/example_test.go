package weighted_test

import (
	"fmt"

	"wpinq/internal/weighted"
)

func ExampleSelect() {
	// Records mapping to the same output accumulate weight.
	a := weighted.FromPairs(
		weighted.Pair[string]{Record: "1", Weight: 0.75},
		weighted.Pair[string]{Record: "2", Weight: 2.0},
		weighted.Pair[string]{Record: "3", Weight: 1.0},
	)
	parity := weighted.Select(a, func(x string) string {
		if x == "2" {
			return "even"
		}
		return "odd"
	})
	fmt.Println(parity)
	// Output: {(even, 2), (odd, 1.75)}
}

func ExampleJoin() {
	// wPINQ's join rescales each key group by its total norm, keeping the
	// transformation stable (Section 2.7).
	left := weighted.FromItems("a1", "a2")
	right := weighted.FromItems("b1")
	out := weighted.Join(left, right,
		func(string) int { return 0 },
		func(string) int { return 0 },
		func(x, y string) string { return x + y })
	// ||A_0|| + ||B_0|| = 3, so each matched pair carries 1*1/3.
	fmt.Println(out)
	// Output: {(a1b1, 0.3333), (a2b1, 0.3333)}
}

func ExampleShave() {
	// Shave splits a heavy record into unit slices.
	a := weighted.FromPairs(weighted.Pair[string]{Record: "x", Weight: 2.5})
	fmt.Println(weighted.ShaveConst(a, 1.0))
	// Output: {({x 0}, 1), ({x 1}, 1), ({x 2}, 0.5)}
}

func ExampleGroupBy() {
	// Unit-weight records: each group emits its full membership at half
	// the weight.
	edges := weighted.FromItems("a->b", "a->c", "b->c")
	bySource := weighted.GroupBy(edges,
		func(e string) byte { return e[0] },
		func(members []string) int { return len(members) })
	fmt.Println(bySource)
	// Output: {({97 2}, 0.5), ({98 1}, 0.5)}
}

func ExampleDistance() {
	a := weighted.FromPairs(weighted.Pair[string]{Record: "x", Weight: 1.0})
	b := weighted.FromPairs(weighted.Pair[string]{Record: "x", Weight: 3.0})
	fmt.Println(weighted.Distance(a, b))
	// Output: 2
}
