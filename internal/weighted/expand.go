package weighted

import (
	"math"
	"slices"
)

// This file holds the shared expansion semantics of GroupBy and Shave used
// by both the reference engine (transform.go) and the incremental engine
// (wpinq/internal/incremental). Keeping a single implementation guarantees
// both engines agree bit-for-bit on operator semantics.

// PrefixReduce emits the weight-ordered prefix outputs of a single group
// (paper Section 2.5). members lists the group's records with their
// weights; reduce maps a prefix of records to a result; emit receives each
// non-trivial output record and weight. Records with non-positive weight
// contribute nothing. The members slice is reordered in place.
func PrefixReduce[T comparable, K comparable, R comparable](
	key K,
	members []Pair[T],
	reduce func([]T) R,
	emit func(Grouped[K, R], float64),
) {
	PrefixReduceInto(key, members, reduce, emit, nil)
}

// PrefixReduceInto is PrefixReduce with a caller-supplied prefix scratch
// buffer, so hot loops (the incremental GroupBy re-expands two groups per
// touched key per push) do not allocate the prefix slice each call. The
// possibly-grown scratch is returned for reuse; its contents are
// meaningless after the call.
func PrefixReduceInto[T comparable, K comparable, R comparable](
	key K,
	members []Pair[T],
	reduce func([]T) R,
	emit func(Grouped[K, R], float64),
	scratch []T,
) []T {
	// Drop non-positive weights: a record with zero weight is absent, and
	// the GroupBy stability argument is over non-negative datasets.
	kept := members[:0]
	for _, p := range members {
		if p.Weight > Eps {
			kept = append(kept, p)
		}
	}
	members = kept
	// Stable descending sort by weight. The comparison is the exact
	// negation pair of the previous sort.SliceStable less function, and
	// both sorts are stable, so the resulting permutation — and therefore
	// every downstream float accumulation order — is identical; this
	// variant just avoids the reflection-based swapper allocations.
	slices.SortStableFunc(members, func(a, b Pair[T]) int {
		switch {
		case a.Weight > b.Weight:
			return -1
		case a.Weight < b.Weight:
			return 1
		default:
			return 0
		}
	})
	prefix := scratch[:0]
	for i, p := range members {
		prefix = append(prefix, p.Record)
		next := 0.0
		if i+1 < len(members) {
			next = members[i+1].Weight
		}
		pw := (p.Weight - next) / 2
		if pw < Eps {
			continue
		}
		emit(Grouped[K, R]{key, reduce(prefix)}, pw)
	}
	return prefix
}

// ShaveExpand emits the indexed slices of a single record x of weight w
// under the weight sequence f (paper Section 2.8). emit receives each
// (index, slice weight) pair. Non-positive w produces nothing; the
// expansion stops when f returns a non-positive term.
func ShaveExpand[T comparable](x T, w float64, f func(x T, i int) float64, emit func(i int, wi float64)) {
	remaining := w
	for i := 0; remaining > Eps; i++ {
		wi := f(x, i)
		if wi <= 0 {
			return
		}
		take := math.Min(wi, remaining)
		emit(i, take)
		remaining -= take
	}
}
