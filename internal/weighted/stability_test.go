package weighted

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based stability tests (paper Definition 2 and Appendix A):
// every unary transformation T must satisfy
//
//	||T(A) - T(A')|| <= ||A - A'||
//
// and every binary transformation
//
//	||T(A,B) - T(A',B')|| <= ||A - A'|| + ||B - B'||.
//
// Datasets are generated over a small record domain so that collisions,
// accumulation and group interactions are exercised heavily.

const stabTol = 1e-7

func checkUnaryStability(t *testing.T, name string, tr func(*Dataset[int]) *Dataset[int]) {
	t.Helper()
	f := func(aw, bw []float64) bool {
		a, b := fromWeights(aw), fromWeights(bw)
		dIn := Distance(a, b)
		dOut := Distance(tr(a), tr(b))
		return dOut <= dIn+stabTol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Errorf("%s is not stable: %v", name, err)
	}
}

func TestSelectStability(t *testing.T) {
	checkUnaryStability(t, "Select", func(d *Dataset[int]) *Dataset[int] {
		return Select(d, func(x int) int { return x % 3 })
	})
}

func TestWhereStability(t *testing.T) {
	checkUnaryStability(t, "Where", func(d *Dataset[int]) *Dataset[int] {
		return Where(d, func(x int) bool { return x%2 == 0 })
	})
}

func TestSelectManyStability(t *testing.T) {
	checkUnaryStability(t, "SelectMany", func(d *Dataset[int]) *Dataset[int] {
		return SelectManySlice(d, func(x int) []int {
			out := make([]int, x+1)
			for i := range out {
				out[i] = i
			}
			return out
		})
	})
}

func TestShaveStability(t *testing.T) {
	f := func(aw, bw []float64) bool {
		// Shave is defined on non-negative weights; use absolute values.
		a, b := absDataset(fromWeights(aw)), absDataset(fromWeights(bw))
		dIn := Distance(a, b)
		dOut := Distance(ShaveConst(a, 1.0), ShaveConst(b, 1.0))
		return dOut <= dIn+stabTol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Errorf("Shave is not stable: %v", err)
	}
}

func TestGroupByStability(t *testing.T) {
	f := func(aw, bw []float64) bool {
		a, b := absDataset(fromWeights(aw)), absDataset(fromWeights(bw))
		dIn := Distance(a, b)
		tr := func(d *Dataset[int]) *Dataset[Grouped[int, int]] {
			return GroupBy(d, func(x int) int { return x % 2 }, func(m []int) int { return len(m) })
		}
		dOut := Distance(tr(a), tr(b))
		return dOut <= dIn+stabTol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Errorf("GroupBy is not stable: %v", err)
	}
}

func TestJoinStability(t *testing.T) {
	// Appendix A, Theorem 4. Join's stability proof assumes non-negative
	// weights (norms as denominators); generate non-negative datasets.
	f := func(aw, bw, cw, dw []float64) bool {
		a, a2 := absDataset(fromWeights(aw)), absDataset(fromWeights(bw))
		b, b2 := absDataset(fromWeights(cw)), absDataset(fromWeights(dw))
		dIn := Distance(a, a2) + Distance(b, b2)
		tr := func(x, y *Dataset[int]) *Dataset[JoinPair[int, int]] {
			return JoinPairs(x, y, func(v int) int { return v % 2 }, func(v int) int { return v % 2 })
		}
		dOut := Distance(tr(a, b), tr(a2, b2))
		return dOut <= dIn+stabTol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Errorf("Join is not stable: %v", err)
	}
}

func TestBinaryOpsStability(t *testing.T) {
	ops := map[string]func(a, b *Dataset[int]) *Dataset[int]{
		"Union":     Union[int],
		"Intersect": Intersect[int],
		"Concat":    Concat[int],
		"Except":    Except[int],
	}
	for name, op := range ops {
		op := op
		f := func(aw, bw, cw, dw []float64) bool {
			a, a2 := fromWeights(aw), fromWeights(bw)
			b, b2 := fromWeights(cw), fromWeights(dw)
			dIn := Distance(a, a2) + Distance(b, b2)
			dOut := Distance(op(a, b), op(a2, b2))
			return dOut <= dIn+stabTol
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Errorf("%s is not stable: %v", name, err)
		}
	}
}

func TestUnionPlusIntersectEqualsConcat(t *testing.T) {
	// max(a,b) + min(a,b) = a + b, element-wise.
	f := func(aw, bw []float64) bool {
		a, b := fromWeights(aw), fromWeights(bw)
		lhs := Concat(Union(a, b), Intersect(a, b))
		rhs := Concat(a, b)
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestConcatExceptInverse(t *testing.T) {
	// Except(Concat(A,B), B) = A.
	f := func(aw, bw []float64) bool {
		a, b := fromWeights(aw), fromWeights(bw)
		back := Except(Concat(a, b), b)
		return Equal(back, a, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestSelectPreservesTotalMass(t *testing.T) {
	f := func(aw []float64) bool {
		a := fromWeights(aw)
		sel := Select(a, func(x int) int { return x % 3 })
		return math.Abs(sel.Total()-a.Total()) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestShaveSelectRoundTripProperty(t *testing.T) {
	f := func(aw []float64) bool {
		a := absDataset(fromWeights(aw))
		back := Select(ShaveConst(a, 0.7), func(ix Indexed[int]) int { return ix.Value })
		return Equal(a, back, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinOutputNormBounded(t *testing.T) {
	// For non-negative inputs, each key's output norm is
	// ||A_k||*||B_k||/(||A_k||+||B_k||) <= min(||A_k||, ||B_k||), so the
	// total output norm is at most min(||A||, ||B||).
	f := func(aw, bw []float64) bool {
		a, b := absDataset(fromWeights(aw)), absDataset(fromWeights(bw))
		j := JoinPairs(a, b, func(v int) int { return v % 2 }, func(v int) int { return v % 2 })
		return j.Norm() <= math.Min(a.Norm(), b.Norm())+stabTol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// absDataset maps every weight to its absolute value.
func absDataset(d *Dataset[int]) *Dataset[int] {
	out := New[int]()
	d.Range(func(x int, w float64) { out.Add(x, math.Abs(w)) })
	return out
}
