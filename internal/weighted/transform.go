package weighted

import (
	"math"
)

// This file implements the reference semantics of every stable
// transformation in wPINQ (paper Sections 2.4-2.8). Each function T
// satisfies ||T(A) - T(A')|| <= ||A - A'|| (unary) or
// ||T(A,B) - T(A',B')|| <= ||A-A'|| + ||B-B'|| (binary); the property tests
// in stability_test.go check these bounds on random inputs.

// Select applies f to each record, accumulating the weights of input records
// that map to the same output record:
//
//	Select(A, f)(x) = sum_{y : f(y)=x} A(y)
func Select[T, U comparable](a *Dataset[T], f func(T) U) *Dataset[U] {
	// RangeSorted: colliding outputs accumulate in deterministic order,
	// so the result is a pure function of the input (see PairsSorted).
	out := NewSized[U](a.Len())
	a.RangeSorted(func(x T, w float64) { out.Add(f(x), w) })
	return out
}

// Where keeps only the records satisfying predicate p:
//
//	Where(A, p)(x) = p(x) * A(x)
func Where[T comparable](a *Dataset[T], p func(T) bool) *Dataset[T] {
	out := NewSized[T](a.Len())
	a.Range(func(x T, w float64) {
		if p(x) {
			out.Add(x, w)
		}
	})
	return out
}

// SelectMany maps each record x to a weighted dataset f(x), scales that
// dataset to at most unit norm, multiplies by A(x), and accumulates:
//
//	SelectMany(A, f) = sum_x A(x) * f(x) / max(1, ||f(x)||)
//
// The scaling depends only on the number (norm) of records each individual
// input produces, not on any worst-case bound — the heart of the paper's
// data-dependent rescaling.
func SelectMany[T, U comparable](a *Dataset[T], f func(T) *Dataset[U]) *Dataset[U] {
	out := New[U]()
	a.RangeSorted(func(x T, w float64) {
		fx := f(x)
		scale := w / math.Max(1, fx.Norm())
		fx.Range(func(y U, wy float64) { out.Add(y, wy*scale) })
	})
	return out
}

// SelectManySlice is SelectMany for the common case where f produces a list
// of unit-weight records: an input of weight w mapped to n distinct items
// yields each item with weight w/max(1, n). Duplicate items in the slice
// accumulate weight before scaling.
func SelectManySlice[T, U comparable](a *Dataset[T], f func(T) []U) *Dataset[U] {
	return SelectMany(a, func(x T) *Dataset[U] { return FromItems(f(x)...) })
}

// Grouped is the output record type of GroupBy: a group key together with
// the result of the reducer on (a prefix of) the group.
type Grouped[K, R comparable] struct {
	Key    K
	Result R
}

// GroupBy groups records by key and applies the reducer to weight-ordered
// prefixes of each group (paper Section 2.5). For a group with records
// x_0, x_1, ... ordered by non-increasing weight w_0 >= w_1 >= ..., the
// prefix {x_j : j <= i} is emitted with weight (w_i - w_{i+1})/2 (taking
// w_n = 0 past the end). When all records share weight w — the common case
// of unit-weight inputs — only the full group appears, with weight w/2.
//
// The reducer receives the prefix's records; its output must be comparable
// so that identical results accumulate. Reducers must not retain the slice.
// The paper defines each prefix as a *set*: records of equal weight appear
// in unspecified relative order (their boundary prefixes carry zero
// weight), so reducers must not depend on the order of equal-weight
// records — use order-insensitive functions (count, sum, ...) or sort
// within the reducer.
func GroupBy[T comparable, K comparable, R comparable](a *Dataset[T], key func(T) K, reduce func([]T) R) *Dataset[Grouped[K, R]] {
	// Groups are built and emitted in deterministic (first-seen over
	// RangeSorted) order: prefix weights and colliding reducer outputs
	// accumulate identically on every run.
	groups := make(map[K][]Pair[T])
	var order []K
	a.RangeSorted(func(x T, w float64) {
		k := key(x)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], Pair[T]{x, w})
	})
	out := New[Grouped[K, R]]()
	for _, k := range order {
		PrefixReduce(k, groups[k], reduce, func(g Grouped[K, R], w float64) { out.Add(g, w) })
	}
	return out
}

// Indexed is the output record type of Shave: the original record together
// with the index of the shaved slice.
type Indexed[T comparable] struct {
	Value T
	Index int
}

// Shave decomposes each record x of weight A(x) into records <x, 0>,
// <x, 1>, ... whose weights follow the sequence f(x) until A(x) is
// exhausted (paper Section 2.8):
//
//	Shave(A, f)(<x,i>) = max(0, min(f(x)_i, A(x) - sum_{j<i} f(x)_j))
//
// f(x) returns the weight of slice i for record x; it must be non-negative.
// Records with non-positive weight produce no output.
func Shave[T comparable](a *Dataset[T], f func(x T, i int) float64) *Dataset[Indexed[T]] {
	out := New[Indexed[T]]()
	a.Range(func(x T, w float64) {
		ShaveExpand(x, w, f, func(i int, wi float64) { out.Add(Indexed[T]{x, i}, wi) })
	})
	return out
}

// ShaveConst is Shave with the constant weight sequence <w, w, w, ...>.
// It is the form used by all of the paper's graph analyses
// (e.g. Shave(1.0) to enumerate a vertex's incident-edge slots).
func ShaveConst[T comparable](a *Dataset[T], w float64) *Dataset[Indexed[T]] {
	return Shave(a, func(T, int) float64 { return w })
}

// Join matches records of a and b sharing a key and emits
// reduce(x, y) for each matching pair, with the weights of each key group
// normalized by the group's total input norm (paper Section 2.7, eq. 1):
//
//	Join(A, B)(r) = sum_k  sum_{(x,y) : keys match k, reduce(x,y)=r}
//	                  A_k(x) * B_k(y) / (||A_k|| + ||B_k||)
//
// This normalized outer product is what makes Join stable on weighted
// datasets, unlike the standard relational equi-join.
func Join[A, B comparable, K comparable, R comparable](
	a *Dataset[A], b *Dataset[B],
	keyA func(A) K, keyB func(B) K,
	reduce func(A, B) R,
) *Dataset[R] {
	// Key groups are built and matched in deterministic (first-seen over
	// RangeSorted) order: per-key norms and colliding outputs accumulate
	// identically on every run.
	ga := make(map[K][]Pair[A])
	var order []K
	a.RangeSorted(func(x A, w float64) {
		k := keyA(x)
		if _, ok := ga[k]; !ok {
			order = append(order, k)
		}
		ga[k] = append(ga[k], Pair[A]{x, w})
	})
	gb := make(map[K][]Pair[B])
	b.RangeSorted(func(y B, w float64) {
		k := keyB(y)
		gb[k] = append(gb[k], Pair[B]{y, w})
	})
	out := New[R]()
	for _, k := range order {
		as := ga[k]
		bs, ok := gb[k]
		if !ok {
			continue
		}
		var normA, normB float64
		for _, p := range as {
			normA += math.Abs(p.Weight)
		}
		for _, p := range bs {
			normB += math.Abs(p.Weight)
		}
		denom := normA + normB
		if denom < Eps {
			continue
		}
		for _, pa := range as {
			for _, pb := range bs {
				out.Add(reduce(pa.Record, pb.Record), pa.Weight*pb.Weight/denom)
			}
		}
	}
	return out
}

// JoinPairs is Join with the identity reduction: the output records are the
// matched (a, b) pairs themselves.
func JoinPairs[A, B comparable, K comparable](
	a *Dataset[A], b *Dataset[B],
	keyA func(A) K, keyB func(B) K,
) *Dataset[JoinPair[A, B]] {
	return Join(a, b, keyA, keyB, func(x A, y B) JoinPair[A, B] { return JoinPair[A, B]{x, y} })
}

// JoinPair is the output record type of JoinPairs.
type JoinPair[A, B comparable] struct {
	Left  A
	Right B
}

// Union takes the element-wise maximum of weights:
//
//	Union(A, B)(x) = max(A(x), B(x))
func Union[T comparable](a, b *Dataset[T]) *Dataset[T] {
	out := NewSized[T](a.Len() + b.Len())
	a.Range(func(x T, w float64) { out.Set(x, math.Max(w, b.Weight(x))) })
	b.Range(func(x T, w float64) {
		if a.Weight(x) == 0 {
			out.Set(x, math.Max(w, 0))
		}
	})
	return out
}

// Intersect takes the element-wise minimum of weights:
//
//	Intersect(A, B)(x) = min(A(x), B(x))
func Intersect[T comparable](a, b *Dataset[T]) *Dataset[T] {
	out := New[T]()
	a.Range(func(x T, w float64) {
		m := math.Min(w, b.Weight(x))
		if m != 0 {
			out.Set(x, m)
		}
	})
	// Records present only in b can still contribute negatively:
	// min(0, w) = w when w < 0.
	b.Range(func(x T, w float64) {
		if a.Weight(x) == 0 && w < 0 {
			out.Set(x, w)
		}
	})
	return out
}

// Concat adds weights element-wise:
//
//	Concat(A, B)(x) = A(x) + B(x)
func Concat[T comparable](a, b *Dataset[T]) *Dataset[T] {
	out := a.Clone()
	out.AddAll(b, 1)
	return out
}

// Except subtracts weights element-wise:
//
//	Except(A, B)(x) = A(x) - B(x)
func Except[T comparable](a, b *Dataset[T]) *Dataset[T] {
	out := a.Clone()
	out.AddAll(b, -1)
	return out
}
