package weighted

import (
	"math"
	"sort"
	"strconv"
	"testing"
)

// Tests in this file reproduce the worked examples of paper Sections 2.4-2.8
// exactly, plus semantic edge cases the examples do not cover.

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		panic(err)
	}
	return n
}

func TestWherePaperExample(t *testing.T) {
	// Where with predicate x^2 < 5 on A gives {("1",0.75), ("2",2.0)}.
	got := Where(paperA(), func(x string) bool { n := atoi(x); return n*n < 5 })
	want := FromPairs(Pair[string]{"1", 0.75}, Pair[string]{"2", 2.0})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Where = %v, want %v", got, want)
	}
}

func TestSelectPaperExample(t *testing.T) {
	// Select with f(x) = x mod 2 on A gives {("0",2.0), ("1",1.75)}:
	// records "1" and "3" accumulate.
	got := Select(paperA(), func(x string) string { return strconv.Itoa(atoi(x) % 2) })
	want := FromPairs(Pair[string]{"0", 2.0}, Pair[string]{"1", 1.75})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Select = %v, want %v", got, want)
	}
}

func TestSelectManyPaperExample(t *testing.T) {
	// SelectMany with f(x) = {1, 2, ..., x}, unit weights, on A gives
	// {("1", 0.75 + 1.0 + 1/3), ("2", 1.0 + 1/3), ("3", 1/3)}.
	got := SelectManySlice(paperA(), func(x string) []int {
		n := atoi(x)
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	})
	want := FromPairs(
		Pair[int]{1, 0.75 + 1.0 + 1.0/3},
		Pair[int]{2, 1.0 + 1.0/3},
		Pair[int]{3, 1.0 / 3},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("SelectMany = %v, want %v", got, want)
	}
}

func TestSelectManyScalesOnlyAboveUnitNorm(t *testing.T) {
	// max(1, ||f(x)||): a record mapping to norm < 1 is scaled by A(x) only.
	a := FromPairs(Pair[string]{"x", 2.0})
	got := SelectMany(a, func(string) *Dataset[string] {
		return FromPairs(Pair[string]{"y", 0.5})
	})
	if w := got.Weight("y"); math.Abs(w-1.0) > 1e-12 {
		t.Errorf("weight = %v, want 1.0 (0.5 * 2.0, no downscaling below unit norm)", w)
	}
}

func TestSelectManyEmptyOutput(t *testing.T) {
	a := paperA()
	got := SelectManySlice(a, func(string) []int { return nil })
	if got.Len() != 0 {
		t.Errorf("SelectMany to empty lists should be empty, got %v", got)
	}
}

func TestGroupByPaperExample(t *testing.T) {
	// Grouping C = {(1,.75),(2,2),(3,1),(4,2),(5,2)} by parity produces
	//   ("odd, {5,3,1}", 0.375), ("odd, {5,3}", 0.125),
	//   ("odd, {5}", 0.5),       ("even, {2,4}", 1.0).
	c := FromPairs(
		Pair[int]{1, 0.75}, Pair[int]{2, 2.0}, Pair[int]{3, 1.0},
		Pair[int]{4, 2.0}, Pair[int]{5, 2.0},
	)
	// Render prefixes as strings so results are comparable records. The
	// prefix is a set (equal-weight records arrive in unspecified order),
	// so render in a canonical descending order.
	got := GroupBy(c, func(x int) int { return x % 2 }, func(members []int) string {
		sorted := append([]int(nil), members...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		s := ""
		for i, m := range sorted {
			if i > 0 {
				s += ","
			}
			s += strconv.Itoa(m)
		}
		return s
	})
	want := FromPairs(
		Pair[Grouped[int, string]]{Grouped[int, string]{1, "5,3,1"}, 0.375},
		Pair[Grouped[int, string]]{Grouped[int, string]{1, "5,3"}, 0.125},
		Pair[Grouped[int, string]]{Grouped[int, string]{1, "5"}, 0.5},
		Pair[Grouped[int, string]]{Grouped[int, string]{0, "4,2"}, 1.0},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("GroupBy = %v, want %v", got, want)
	}
}

func TestGroupByUnitWeightsHalved(t *testing.T) {
	// Unit-weight inputs: only the full group appears, with weight 0.5.
	edges := FromItems("a->b", "a->c", "a->d")
	got := GroupBy(edges, func(string) string { return "a" }, func(m []string) int { return len(m) })
	want := FromPairs(Pair[Grouped[string, int]]{Grouped[string, int]{"a", 3}, 0.5})
	if !Equal(got, want, 1e-12) {
		t.Errorf("GroupBy(unit weights) = %v, want %v", got, want)
	}
}

func TestGroupByTotalWeightHalved(t *testing.T) {
	// The emitted prefix weights for a group sum to w_max/2.
	c := FromPairs(Pair[int]{1, 3.0}, Pair[int]{3, 1.0}, Pair[int]{5, 0.5})
	got := GroupBy(c, func(int) int { return 0 }, func(m []int) int { return len(m) })
	if tot := got.Norm(); math.Abs(tot-1.5) > 1e-12 {
		t.Errorf("total group weight = %v, want 1.5 (= max weight / 2)", tot)
	}
}

func TestShavePaperExample(t *testing.T) {
	// Shave(A, <1,1,1,...>) = {(<1,0>,0.75), (<2,0>,1), (<2,1>,1), (<3,0>,1)}.
	got := ShaveConst(paperA(), 1.0)
	want := FromPairs(
		Pair[Indexed[string]]{Indexed[string]{"1", 0}, 0.75},
		Pair[Indexed[string]]{Indexed[string]{"2", 0}, 1.0},
		Pair[Indexed[string]]{Indexed[string]{"2", 1}, 1.0},
		Pair[Indexed[string]]{Indexed[string]{"3", 0}, 1.0},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Shave = %v, want %v", got, want)
	}
}

func TestShaveSelectInverse(t *testing.T) {
	// Select with f(<x,i>) = x recovers the original dataset exactly
	// (Section 2.8: "Select is Shave's functional inverse").
	a := paperA()
	shaved := ShaveConst(a, 1.0)
	back := Select(shaved, func(ix Indexed[string]) string { return ix.Value })
	if !Equal(a, back, 1e-12) {
		t.Errorf("Select(Shave(A)) = %v, want %v", back, a)
	}
}

func TestShaveCustomSequence(t *testing.T) {
	// Shave with sequence <0.5, 0.25, ...> on a weight-1.0 record takes
	// 0.5, then 0.25, then the 0.25 remainder capped by the next term.
	a := FromPairs(Pair[string]{"x", 1.0})
	seq := []float64{0.5, 0.25, 0.5}
	got := Shave(a, func(_ string, i int) float64 {
		if i < len(seq) {
			return seq[i]
		}
		return 0
	})
	want := FromPairs(
		Pair[Indexed[string]]{Indexed[string]{"x", 0}, 0.5},
		Pair[Indexed[string]]{Indexed[string]{"x", 1}, 0.25},
		Pair[Indexed[string]]{Indexed[string]{"x", 2}, 0.25},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Shave custom = %v, want %v", got, want)
	}
}

func TestShaveTruncatedSequenceLeavesRemainder(t *testing.T) {
	// If the weight sequence ends before the record's weight is exhausted,
	// the excess weight is simply not emitted (f returning 0 terminates).
	a := FromPairs(Pair[string]{"x", 3.0})
	got := Shave(a, func(_ string, i int) float64 {
		if i < 2 {
			return 1.0
		}
		return 0
	})
	if got.Norm() != 2.0 {
		t.Errorf("truncated Shave norm = %v, want 2.0", got.Norm())
	}
}

func TestJoinPaperExample(t *testing.T) {
	// Section 2.7's example uses A' = {("1",0.5),("2",2.0),("3",1.0)} (the
	// printed example scales record "1" to 0.5) joined with B on parity:
	//   A0={"2":2}, B0={"4":2}:     <2,4> weight 2*2/(2+2)    = 1.0
	//   A1={"1":.5,"3":1}, B1={"1":3}: <1,1> weight .5*3/4.5  = 1/3
	//                                  <3,1> weight 1*3/4.5   = 2/3
	a := FromPairs(Pair[string]{"1", 0.5}, Pair[string]{"2", 2.0}, Pair[string]{"3", 1.0})
	parity := func(x string) int { return atoi(x) % 2 }
	got := JoinPairs(a, paperB(), parity, parity)
	type jp = JoinPair[string, string]
	want := FromPairs(
		Pair[jp]{jp{"2", "4"}, 1.0},
		Pair[jp]{jp{"1", "1"}, 1.0 / 3},
		Pair[jp]{jp{"3", "1"}, 2.0 / 3},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Join = %v, want %v", got, want)
	}
}

func TestJoinNoMatches(t *testing.T) {
	a := FromItems(1, 3)
	b := FromItems(2, 4)
	got := JoinPairs(a, b, func(x int) int { return x % 2 }, func(y int) int { return y % 2 })
	if got.Len() != 0 {
		t.Errorf("Join with disjoint keys = %v, want empty", got)
	}
}

func TestJoinReducerAccumulates(t *testing.T) {
	// Two matches reducing to the same output record accumulate weight.
	a := FromItems("a1", "a2")
	b := FromItems("b1")
	got := Join(a, b,
		func(string) int { return 0 },
		func(string) int { return 0 },
		func(string, string) string { return "out" })
	// ||A_0|| + ||B_0|| = 3; each of the 2 pairs has weight 1/3.
	if w := got.Weight("out"); math.Abs(w-2.0/3) > 1e-12 {
		t.Errorf("accumulated join weight = %v, want 2/3", w)
	}
}

func TestJoinLengthTwoPathWeights(t *testing.T) {
	// Section 2.7: joining a symmetric edge set with itself on dst=src
	// yields paths (a,b,c) each with weight 1/(2*d_b).
	type edge struct{ src, dst int }
	type path struct{ a, b, c int }
	// Star: center 0 connected to 1, 2, 3 (symmetric directed), d_0 = 3.
	var edges []edge
	for _, v := range []int{1, 2, 3} {
		edges = append(edges, edge{0, v}, edge{v, 0})
	}
	d := FromItems(edges...)
	paths := Join(d, d,
		func(e edge) int { return e.dst },
		func(e edge) int { return e.src },
		func(x, y edge) path { return path{x.src, x.dst, y.dst} })
	// Path (1, 0, 2) goes through the center: weight must be 1/(2*3).
	if w := paths.Weight(path{1, 0, 2}); math.Abs(w-1.0/6) > 1e-12 {
		t.Errorf("path through degree-3 node weight = %v, want 1/6", w)
	}
	// Path (0, 1, 0) goes through a degree-1 node: weight 1/(2*1).
	if w := paths.Weight(path{0, 1, 0}); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("path through degree-1 node weight = %v, want 1/2", w)
	}
}

func TestConcatPaperExample(t *testing.T) {
	got := Concat(paperA(), paperB())
	want := FromPairs(
		Pair[string]{"1", 3.75}, Pair[string]{"2", 2.0},
		Pair[string]{"3", 1.0}, Pair[string]{"4", 2.0},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
}

func TestIntersectPaperExample(t *testing.T) {
	got := Intersect(paperA(), paperB())
	want := FromPairs(Pair[string]{"1", 0.75})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
}

func TestUnionSemantics(t *testing.T) {
	got := Union(paperA(), paperB())
	want := FromPairs(
		Pair[string]{"1", 3.0}, Pair[string]{"2", 2.0},
		Pair[string]{"3", 1.0}, Pair[string]{"4", 2.0},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestExceptSemantics(t *testing.T) {
	got := Except(paperA(), paperB())
	want := FromPairs(
		Pair[string]{"1", -2.25}, Pair[string]{"2", 2.0},
		Pair[string]{"3", 1.0}, Pair[string]{"4", -2.0},
	)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Except = %v, want %v", got, want)
	}
}

func TestUnionIntersectNegativeWeights(t *testing.T) {
	// With the function view A(x)=0 for absent records:
	// Union({x:-1}, {}) = {} and Intersect({x:-1}, {}) = {x:-1}.
	neg := FromPairs(Pair[string]{"x", -1.0})
	empty := New[string]()
	if got := Union(neg, empty); got.Len() != 0 {
		t.Errorf("Union(neg, empty) = %v, want empty", got)
	}
	if got := Intersect(neg, empty); got.Weight("x") != -1.0 {
		t.Errorf("Intersect(neg, empty) = %v, want {x: -1}", got)
	}
	if got := Intersect(empty, neg); got.Weight("x") != -1.0 {
		t.Errorf("Intersect(empty, neg) = %v, want {x: -1}", got)
	}
}
