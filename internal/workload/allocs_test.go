//go:build !race

// Race builds instrument every allocation, so AllocsPerRun counts are
// meaningless there.

package workload_test

import (
	"math/rand"
	"testing"

	"wpinq/internal/graph"
	"wpinq/internal/mcmc"
	"wpinq/internal/workload"
)

// TestSteadyStateAllocs pins the zero-alloc claim of the pooled hot
// path: once the walk is warm — every group the proposals churn has
// been through the freelist at least once — a committed or aborted
// proposal on the fused 5-workload plan must run in a handful of
// allocations, not O(touched records). The bounds are deliberately
// loose (a proposal that lands on a never-before-seen degree key may
// legitimately miss the pool), but they sit two orders of magnitude
// below the pre-pooling cost, so reintroducing per-push batch or undo
// allocation fails immediately.
//
// The serial layout is near-deterministic; the engine layout adds
// scheduler-dependent channel traffic, so its bound is wider.
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warm-up is slow under -short")
	}
	fits := measureFits(t, testGraph(t), workload.Names(), 2, 1.0, 11)
	for _, l := range []struct {
		name   string
		shards int
		cutoff int
		budget float64 // allocs per proposal (committed or aborted)
	}{
		{"serial", -1, 0, 60},
		{"engine-3", 3, 0, 600},
	} {
		l := l
		t.Run(l.name, func(t *testing.T) {
			g, err := graph.ErdosRenyi(36, 100, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			p, _, _ := fusePlan(t, fits, l.shards, l.cutoff, true, 1.0, 23)
			state := mcmc.NewGraphState(g, p.Input()) // pushes the initial dataset itself
			rng := rand.New(rand.NewSource(99))
			scorer := p.Scorer()

			// step runs one valid proposal end to end. Commit and abort
			// both stay in the loop so the warm-up and the measured
			// passes exercise the same mix the walk does.
			step := func(commit bool) {
				for {
					prop, ok := state.Propose(rng)
					if !ok {
						continue
					}
					state.Speculate(prop)
					scorer.Score()
					if commit {
						state.Commit()
					} else {
						state.Abort(prop)
					}
					return
				}
			}
			for i := 0; i < 300; i++ {
				step(i%2 == 0)
			}

			committed := testing.AllocsPerRun(100, func() { step(true) })
			aborted := testing.AllocsPerRun(100, func() { step(false) })
			t.Logf("allocs/proposal: committed=%.1f aborted=%.1f (budget %.0f)", committed, aborted, l.budget)
			if committed > l.budget {
				t.Errorf("committed proposal: %.1f allocs, budget %.0f", committed, l.budget)
			}
			if aborted > l.budget {
				t.Errorf("aborted proposal: %.1f allocs, budget %.0f", aborted, l.budget)
			}
		})
	}
}
