package workload

import (
	"wpinq/internal/core"
	"wpinq/internal/engine"
	"wpinq/internal/graph"
	"wpinq/internal/incremental"
	"wpinq/internal/plan"
	"wpinq/internal/queries"
)

// The built-in workloads: the paper's fit measurements (TbI Section 5.3,
// TbD Section 3.3, JDD Section 3.2) plus two analyses the pre-registry
// architecture could not fit at all — the wedge count (clustering
// denominator) and a motif-by-degree profile (Section 3.5's
// generalization, instantiated on the 3-star).
//
// Each workload is defined exactly once, here. Everything downstream —
// privacy cost accounting, measurement, the canonical serialization
// format, both fit executors, the curator service API, and the CLI
// flags — picks it up by name.
func init() {
	MustRegister(Define[queries.Unit](Workload{
		Name:        "tbi",
		Description: "triangles by intersect: single-record triangle signal (paper Section 5.3)",
		Uses:        4,
	}, Builders[queries.Unit]{
		Query: func(edges *core.Collection[graph.Edge], _ int) *core.Collection[queries.Unit] {
			return queries.TbI(edges)
		},
		Serial: func(edges incremental.Source[graph.Edge], _ int) incremental.Source[queries.Unit] {
			return queries.TbIPipeline(edges)
		},
		Engine: func(edges engine.Source[graph.Edge], _ int) engine.Source[queries.Unit] {
			return queries.EngineTbIPipeline(edges)
		},
		SerialFused: func(m *plan.Memo, edges incremental.Source[graph.Edge], _ int) incremental.Source[queries.Unit] {
			return queries.FusedTbIPipeline(m, edges)
		},
		EngineFused: func(m *plan.Memo, edges engine.Source[graph.Edge], _ int) engine.Source[queries.Unit] {
			return queries.EngineFusedTbIPipeline(m, edges)
		},
	}))

	MustRegister(Define[queries.DegTriple](Workload{
		Name:        "tbd",
		Description: "triangles by degree: weight per sorted degree triple (paper Section 3.3)",
		Uses:        9,
		Bucketed:    true,
	}, Builders[queries.DegTriple]{
		Query:       queries.TbD,
		Serial:      queries.TbDPipeline,
		Engine:      queries.EngineTbDPipeline,
		SerialFused: queries.FusedTbDPipeline,
		EngineFused: queries.EngineFusedTbDPipeline,
	}))

	MustRegister(Define[queries.DegPair](Workload{
		Name:        "jdd",
		Description: "joint degree distribution: weight per directed-edge degree pair (paper Section 3.2)",
		Uses:        4,
	}, Builders[queries.DegPair]{
		Query: func(edges *core.Collection[graph.Edge], _ int) *core.Collection[queries.DegPair] {
			return queries.JDD(edges)
		},
		Serial: func(edges incremental.Source[graph.Edge], _ int) incremental.Source[queries.DegPair] {
			return queries.JDDPipeline(edges)
		},
		Engine: func(edges engine.Source[graph.Edge], _ int) engine.Source[queries.DegPair] {
			return queries.EngineJDDPipeline(edges)
		},
		SerialFused: func(m *plan.Memo, edges incremental.Source[graph.Edge], _ int) incremental.Source[queries.DegPair] {
			return queries.FusedJDDPipeline(m, edges)
		},
		EngineFused: func(m *plan.Memo, edges engine.Source[graph.Edge], _ int) engine.Source[queries.DegPair] {
			return queries.EngineFusedJDDPipeline(m, edges)
		},
	}))

	MustRegister(Define[queries.Unit](Workload{
		Name:        "wedges",
		Description: "length-two-path count: clustering-coefficient denominator (paper Section 2.7)",
		Uses:        2,
	}, Builders[queries.Unit]{
		Query: func(edges *core.Collection[graph.Edge], _ int) *core.Collection[queries.Unit] {
			return queries.WedgeCount(edges)
		},
		Serial: func(edges incremental.Source[graph.Edge], _ int) incremental.Source[queries.Unit] {
			return queries.WedgeCountPipeline(edges)
		},
		Engine: func(edges engine.Source[graph.Edge], _ int) engine.Source[queries.Unit] {
			return queries.EngineWedgeCountPipeline(edges)
		},
		SerialFused: func(m *plan.Memo, edges incremental.Source[graph.Edge], _ int) incremental.Source[queries.Unit] {
			return queries.FusedWedgeCountPipeline(m, edges)
		},
		EngineFused: func(m *plan.Memo, edges engine.Source[graph.Edge], _ int) engine.Source[queries.Unit] {
			return queries.EngineFusedWedgeCountPipeline(m, edges)
		},
	}))

	// star4-by-degree instantiates the generic motif-by-degree plan on
	// the 3-star: the weighted prevalence of hubs-with-three-leaves,
	// broken down by the (bucketed) degrees of the four vertices. Its
	// builders run the same compiled join plan as every other pattern,
	// so registering another motif workload is a Define call away.
	MustRegister(Define[queries.DegProfile](Workload{
		Name:        "star4-by-degree",
		Description: "3-star motif prevalence by sorted degree profile (paper Section 3.5)",
		Uses:        queries.MotifByDegreeUses(queries.StarPattern4),
		Bucketed:    true,
	}, Builders[queries.DegProfile]{
		Query: func(edges *core.Collection[graph.Edge], bucket int) *core.Collection[queries.DegProfile] {
			return mustPlan(queries.MotifByDegree(edges, queries.StarPattern4, bucket))
		},
		Serial: func(edges incremental.Source[graph.Edge], bucket int) incremental.Source[queries.DegProfile] {
			return mustPlan(queries.MotifByDegreePipeline(edges, queries.StarPattern4, bucket))
		},
		Engine: func(edges engine.Source[graph.Edge], bucket int) engine.Source[queries.DegProfile] {
			return mustPlan(queries.EngineMotifByDegreePipeline(edges, queries.StarPattern4, bucket))
		},
		SerialFused: func(m *plan.Memo, edges incremental.Source[graph.Edge], bucket int) incremental.Source[queries.DegProfile] {
			return mustPlan(queries.FusedMotifByDegreePipeline(m, edges, queries.StarPattern4, bucket))
		},
		EngineFused: func(m *plan.Memo, edges engine.Source[graph.Edge], bucket int) engine.Source[queries.DegProfile] {
			return mustPlan(queries.EngineFusedMotifByDegreePipeline(m, edges, queries.StarPattern4, bucket))
		},
	}))
}

// mustPlan unwraps motif builders' error return: the built-in patterns
// are static and validated, so compilation cannot fail.
func mustPlan[S any](s S, err error) S {
	if err != nil {
		panic(err)
	}
	return s
}
