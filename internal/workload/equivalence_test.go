package workload_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"wpinq/internal/engine"
	"wpinq/internal/graph"
	"wpinq/internal/incremental"
	"wpinq/internal/workload"
)

// TestRegisteredWorkloadsMatchQueryOnEveryExecutor is the registry's
// payoff for correctness coverage: one table-driven test proves, for
// EVERY registered workload, that both incremental executors track the
// one-shot reference query exactly — initially and across a sequence of
// random edge swaps. Registering a new workload buys this coverage for
// free; no per-workload equivalence test needs to be written. Run under
// -race, the cutoff-0 layout also exercises the sharded executor's real
// parallel dispatch.
func TestRegisteredWorkloadsMatchQueryOnEveryExecutor(t *testing.T) {
	layouts := []struct {
		name   string
		shards int
		cutoff int
	}{
		{"serial", -1, 0},
		{"engine-1", 1, engine.DefaultSerialCutoff},
		{"engine-4", 4, 0}, // cutoff 0: parallel dispatch on every round
	}
	for _, w := range workload.All() {
		w := w
		bucket := 0
		if w.Bucketed {
			bucket = 2
		}
		for _, l := range layouts {
			l := l
			t.Run(fmt.Sprintf("%s/%s", w.Name, l.name), func(t *testing.T) {
				t.Parallel()
				g := testGraph(t)
				p := workload.NewPlan(l.shards)
				if e := p.Engine(); e != nil {
					e.SetSerialCutoff(l.cutoff)
				}
				col := w.Collect(p, bucket)
				p.Input().PushDataset(graph.SymmetricEdges(g))

				compare := func(step int) {
					t.Helper()
					got, err := col.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					want, err := w.Exact(g, bucket)
					if err != nil {
						t.Fatal(err)
					}
					diffMaps(t, step, got, want)
				}
				compare(-1)

				rng := rand.New(rand.NewSource(7))
				edges := g.EdgeList()
				for step := 0; step < 8; step++ {
					ei, ej := rng.Intn(len(edges)), rng.Intn(len(edges))
					if ei == ej {
						continue
					}
					a, b := edges[ei].Src, edges[ei].Dst
					c, d := edges[ej].Src, edges[ej].Dst
					if rng.Intn(2) == 0 {
						c, d = d, c
					}
					if a == d || c == b || a == c || b == d || g.HasEdge(a, d) || g.HasEdge(c, b) {
						continue
					}
					g.RemoveEdge(a, b)
					g.RemoveEdge(c, d)
					g.AddEdge(a, d)
					g.AddEdge(c, b)
					edges[ei] = graph.Edge{Src: a, Dst: d}
					edges[ej] = graph.Edge{Src: c, Dst: b}
					p.Input().Push(swapDiffs(a, b, c, d))
					compare(step)
				}
			})
		}
	}
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.HolmeKim(36, 3, 0.6, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func swapDiffs(a, b, c, d graph.Node) []incremental.Delta[graph.Edge] {
	return []incremental.Delta[graph.Edge]{
		{Record: graph.Edge{Src: a, Dst: b}, Weight: -1},
		{Record: graph.Edge{Src: b, Dst: a}, Weight: -1},
		{Record: graph.Edge{Src: c, Dst: d}, Weight: -1},
		{Record: graph.Edge{Src: d, Dst: c}, Weight: -1},
		{Record: graph.Edge{Src: a, Dst: d}, Weight: 1},
		{Record: graph.Edge{Src: d, Dst: a}, Weight: 1},
		{Record: graph.Edge{Src: c, Dst: b}, Weight: 1},
		{Record: graph.Edge{Src: b, Dst: c}, Weight: 1},
	}
}

// diffMaps compares canonical key -> weight maps to float-accumulation
// tolerance, treating missing keys as zero weight.
func diffMaps(t *testing.T, step int, got, want map[string]float64) {
	t.Helper()
	const tol = 1e-6
	for k, w := range want {
		if gw := got[k]; math.Abs(gw-w) > tol*(1+math.Abs(w)) {
			t.Fatalf("step %d: record %s = %v, reference query says %v", step, k, gw, w)
		}
	}
	for k, gw := range got {
		if _, ok := want[k]; !ok && math.Abs(gw) > tol {
			t.Fatalf("step %d: record %s = %v, absent from reference query", step, k, gw)
		}
	}
}
