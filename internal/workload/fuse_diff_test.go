package workload_test

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"wpinq/internal/budget"
	"wpinq/internal/core"
	"wpinq/internal/engine"
	"wpinq/internal/graph"
	"wpinq/internal/workload"
)

// fuseLayouts are the executor layouts every fused-vs-unfused
// differential runs on: the serial reference engine, a single-shard
// parallel executor, and a genuinely parallel three-shard executor with
// serial cutoff 0 (parallel dispatch on every round; run under -race).
var fuseLayouts = []struct {
	name   string
	shards int
	cutoff int
}{
	{"serial", -1, 0},
	{"engine-1", 1, engine.DefaultSerialCutoff},
	{"engine-3", 3, 0},
}

// fuseSubsets samples the power set of registered workloads at the
// interesting overlap structures: singletons (nothing to fuse), the
// paths-sharing pair, the degrees-sharing pair, a pair with no shared
// prefix beyond the root, a triple, and the full set.
func fuseSubsets(t *testing.T) [][]string {
	t.Helper()
	all := workload.Names()
	subsets := [][]string{all}
	for _, name := range all {
		subsets = append(subsets, []string{name})
	}
	subsets = append(subsets,
		[]string{"tbi", "wedges"},          // share the paths join
		[]string{"jdd", "tbd"},             // share the degree GroupBy (tbd unbucketed here would; bucketed shares with star4)
		[]string{"jdd", "wedges"},          // no shared fragment: empty overlap
		[]string{"star4-by-degree", "tbd"}, // share the bucketed degrees
		[]string{"tbi", "tbd", "wedges"},   // three consumers of one paths fragment
	)
	return subsets
}

// measureFits takes one real DP measurement per named workload (sorted
// name order, exactly like synth.Measure) against a budget-backed
// protected graph.
func measureFits(t *testing.T, g *graph.Graph, names []string, bucket int, eps float64, seed int64) []workload.Measured {
	t.Helper()
	ws, err := workload.Resolve(names)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
	total := 0
	for _, w := range ws {
		total += w.Uses
	}
	src := budget.NewSource("edges", float64(total)*eps*(1+1e-9))
	edges := core.FromDataset(graph.SymmetricEdges(g), src)
	rng := rand.New(rand.NewSource(seed))
	fits := make([]workload.Measured, 0, len(ws))
	for _, w := range ws {
		m, err := w.Measure(edges, bucket, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		fits = append(fits, m)
	}
	return fits
}

// fusePlan builds one plan (fused or not) on a layout, attaches every
// fit (reseeded deterministically, so both plans of a differential pair
// hold bit-identical released histograms and draw bit-identical lazy
// noise) plus a collector per workload, and returns the plan, the
// attached fits, and the collectors in workload order.
func fusePlan(t *testing.T, fits []workload.Measured, shards, cutoff int, fuse bool, eps float64, noiseSeed int64) (*workload.Plan, []workload.Measured, []workload.Collected) {
	t.Helper()
	p := workload.NewPlanFused(shards, fuse)
	if e := p.Engine(); e != nil {
		e.SetSerialCutoff(cutoff)
	}
	rng := rand.New(rand.NewSource(noiseSeed))
	attached := make([]workload.Measured, 0, len(fits))
	cols := make([]workload.Collected, 0, len(fits))
	for _, fit := range fits {
		fit, err := fit.Reseed(eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := fit.Attach(p, eps); err != nil {
			t.Fatal(err)
		}
		attached = append(attached, fit)
		cols = append(cols, fit.Workload.Collect(p, fit.Bucket))
	}
	return p, attached, cols
}

// entriesJSON serializes a measurement's canonical entries.
func entriesJSON(t *testing.T, m workload.Measured) string {
	t.Helper()
	es, err := m.Entries()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(es)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// scoresClose compares fit scores across the fused/unfused pair.
// Sharing a fragment changes operator construction order, which can
// reorder floating-point accumulation at downstream binary joins, so
// exact bit equality is not guaranteed; 1e-9 relative is far below any
// decision-relevant difference and far above accumulated ulp drift.
func scoresClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestFusedMatchesUnfusedOnWorkloadSubsets is the tentpole's primary
// differential: over power-set samples of the registry and every
// executor layout, a fused plan and a per-workload-pipeline plan
// attached to bit-identical released histograms produce the same fit
// scores and the same collected outputs, initially and across a
// sequence of edge swaps — and the fused plan does strictly less
// propagation work whenever the subset shares a prefix.
func TestFusedMatchesUnfusedOnWorkloadSubsets(t *testing.T) {
	const (
		eps    = 1.0
		bucket = 2
	)
	g0 := testGraph(t)
	for _, names := range fuseSubsets(t) {
		names := names
		fits := measureFits(t, g0, names, bucket, eps, 11)
		for _, l := range fuseLayouts {
			l := l
			t.Run(fmt.Sprintf("%v/%s", names, l.name), func(t *testing.T) {
				t.Parallel()
				g := g0.Clone()
				fused, fusedFits, fusedCols := fusePlan(t, fits, l.shards, l.cutoff, true, eps, 23)
				plain, plainFits, plainCols := fusePlan(t, fits, l.shards, l.cutoff, false, eps, 23)

				// The released histograms the two plans fit against must be
				// byte-identical: fusion is a plan transformation, not a
				// measurement change.
				for i := range fusedFits {
					fj, pj := entriesJSON(t, fusedFits[i]), entriesJSON(t, plainFits[i])
					if fj != pj {
						t.Fatalf("%s: released histograms differ between fused and unfused plans", fusedFits[i].Workload.Name)
					}
				}

				fused.Input().PushDataset(graph.SymmetricEdges(g))
				plain.Input().PushDataset(graph.SymmetricEdges(g))

				compare := func(step int) {
					t.Helper()
					fs, ps := fused.Scorer().Score(), plain.Scorer().Score()
					if !scoresClose(fs, ps) {
						t.Fatalf("step %d: fused score %v, unfused %v", step, fs, ps)
					}
					for i := range fusedCols {
						fsnap, err := fusedCols[i].Snapshot()
						if err != nil {
							t.Fatal(err)
						}
						psnap, err := plainCols[i].Snapshot()
						if err != nil {
							t.Fatal(err)
						}
						diffMaps(t, step, fsnap, psnap)
					}
				}
				compare(-1)

				rng := rand.New(rand.NewSource(17))
				edges := g.EdgeList()
				for step := 0; step < 6; step++ {
					ei, ej := rng.Intn(len(edges)), rng.Intn(len(edges))
					if ei == ej {
						continue
					}
					a, b := edges[ei].Src, edges[ei].Dst
					c, d := edges[ej].Src, edges[ej].Dst
					if rng.Intn(2) == 0 {
						c, d = d, c
					}
					if a == d || c == b || a == c || b == d || g.HasEdge(a, d) || g.HasEdge(c, b) {
						continue
					}
					g.RemoveEdge(a, b)
					g.RemoveEdge(c, d)
					g.AddEdge(a, d)
					g.AddEdge(c, b)
					edges[ei] = graph.Edge{Src: a, Dst: d}
					edges[ej] = graph.Edge{Src: c, Dst: b}
					diff := swapDiffs(a, b, c, d)
					fused.Input().Push(diff)
					plain.Input().Push(diff)
					compare(step)
				}

				// Propagation-work accounting: the same requests went
				// through both memos, so any sharing must show up as
				// strictly fewer fragment batch deliveries on the fused
				// side; with nothing shared the two plans are the same plan.
				fstat, pstat := fused.Fusion().Stats(), plain.Fusion().Stats()
				if fstat.Requests != pstat.Requests {
					t.Fatalf("request counts diverged: fused %+v, unfused %+v", fstat, pstat)
				}
				if fstat.Shared > 0 {
					if fp, pp := fused.Fusion().Pushes(), plain.Fusion().Pushes(); fp >= pp {
						t.Errorf("fused plan delivered %d fragment batches, unfused %d; sharing %d fragments must cost less",
							fp, pp, fstat.Shared)
					}
					if len(fused.Fusion().FanOuts()) == 0 {
						t.Errorf("memo shares %d requests but reports no fan-out fragments", fstat.Shared)
					}
				} else if fused.Fusion().Pushes() != plain.Fusion().Pushes() {
					t.Errorf("no fragments shared, but push counts differ: fused %d, unfused %d",
						fused.Fusion().Pushes(), plain.Fusion().Pushes())
				}
			})
		}
	}
}

// TestFusedPlanDAGShape pins the fused DAG the full registry compiles
// to, on both executors: one paths join fanning out to tbi, tbd, and
// wedges; one unbucketed degrees fragment for jdd; one bucketed degrees
// fragment shared by tbd and star4-by-degree.
func TestFusedPlanDAGShape(t *testing.T) {
	const (
		eps    = 1.0
		bucket = 2
	)
	g := testGraph(t)
	fits := measureFits(t, g, workload.Names(), bucket, eps, 11)
	var serialKeys []string
	for _, l := range fuseLayouts {
		p, _, _ := fusePlan(t, fits, l.shards, l.cutoff, true, eps, 23)
		m := p.Fusion()
		var keys []string
		fanout := map[string]int{}
		for _, f := range m.DAG() {
			keys = append(keys, f.Key)
			if f.Refs > 1 {
				fanout[f.Key] = f.Refs
			}
		}
		// Collectors double every request, so expected fan-out refs are
		// 2x the sink-only consumer counts: paths feeds tbi, tbd, wedges
		// (via pathdeg and suffixes), degrees/b=2 feeds tbd and star4.
		if fanout["paths"] == 0 || fanout["degrees/b=2"] == 0 {
			t.Fatalf("%s: expected paths and degrees/b=2 fan-outs, got %v", l.name, fanout)
		}
		if fanout["jdd"] != 2 || fanout["tbi"] != 2 {
			t.Fatalf("%s: terminal fragments should be shared by sink+collector, got %v", l.name, fanout)
		}
		if serialKeys == nil {
			serialKeys = keys
		} else if !reflect.DeepEqual(serialKeys, keys) {
			t.Fatalf("%s: DAG %v differs from serial layout's %v — executors must fuse identically",
				l.name, keys, serialKeys)
		}
	}
}
