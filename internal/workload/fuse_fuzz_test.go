package workload_test

import (
	"math/rand"
	"testing"

	"wpinq/internal/graph"
	"wpinq/internal/workload"
)

// maskNames maps a fuzz-chosen bitmask onto a subset of the registry in
// sorted-name order (bit i selects Names()[i]).
func maskNames(mask uint8) []string {
	all := workload.Names()
	var names []string
	for i, name := range all {
		if mask&(1<<i) != 0 {
			names = append(names, name)
		}
	}
	return names
}

// FuzzFusedEquivalence feeds random workload subsets and random small
// graphs through a fused plan and its per-workload-pipeline twin and
// requires equivalent fit scores and collected outputs — initially and
// after edge swaps — with no panics. The seed corpus pins the edge
// cases the planner must not mishandle: every single-workload set
// (nothing to fuse), a set whose members share no fragment, and the
// full registry.
func FuzzFusedEquivalence(f *testing.F) {
	// Sorted registry order: jdd, star4-by-degree, tbd, tbi, wedges.
	for i := 0; i < 5; i++ {
		f.Add(uint8(1<<i), int64(3), uint8(6), uint8(2)) // singletons
	}
	f.Add(uint8(1|16), int64(5), uint8(9), uint8(0)) // jdd+wedges: empty overlap
	f.Add(uint8(4|8), int64(7), uint8(12), uint8(3)) // tbd+tbi: shared paths
	f.Add(uint8(31), int64(11), uint8(4), uint8(2))  // full registry
	f.Fuzz(func(t *testing.T, mask uint8, seed int64, size uint8, bucket uint8) {
		names := maskNames(mask & 31)
		if len(names) == 0 {
			t.Skip("empty workload set")
		}
		const eps = 1.0
		nodes := 8 + int(size%12)
		g, err := graph.ErdosRenyi(nodes, 2*nodes, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Skip(err)
		}
		b := int(bucket % 4)
		fits := measureFits(t, g, names, b, eps, seed+1)

		fused, _, fusedCols := fusePlan(t, fits, -1, 0, true, eps, 23)
		plain, _, plainCols := fusePlan(t, fits, -1, 0, false, eps, 23)
		fused.Input().PushDataset(graph.SymmetricEdges(g))
		plain.Input().PushDataset(graph.SymmetricEdges(g))

		compare := func(step int) {
			t.Helper()
			fs, ps := fused.Scorer().Score(), plain.Scorer().Score()
			if !scoresClose(fs, ps) {
				t.Fatalf("step %d: workloads %v bucket %d: fused score %v, unfused %v", step, names, b, fs, ps)
			}
			for i := range fusedCols {
				fsnap, err := fusedCols[i].Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				psnap, err := plainCols[i].Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				diffMaps(t, step, fsnap, psnap)
			}
		}
		compare(-1)

		rng := rand.New(rand.NewSource(seed + 2))
		edges := g.EdgeList()
		for step := 0; step < 3; step++ {
			ei, ej := rng.Intn(len(edges)), rng.Intn(len(edges))
			if ei == ej {
				continue
			}
			a, bb := edges[ei].Src, edges[ei].Dst
			c, d := edges[ej].Src, edges[ej].Dst
			if a == d || c == bb || a == c || bb == d || g.HasEdge(a, d) || g.HasEdge(c, bb) {
				continue
			}
			g.RemoveEdge(a, bb)
			g.RemoveEdge(c, d)
			g.AddEdge(a, d)
			g.AddEdge(c, bb)
			edges[ei] = graph.Edge{Src: a, Dst: d}
			edges[ej] = graph.Edge{Src: c, Dst: bb}
			diff := swapDiffs(a, bb, c, d)
			fused.Input().Push(diff)
			plain.Input().Push(diff)
			compare(step)
		}

		// The unfused twin answers the same requests, so the memos must
		// agree on the would-be DAG regardless of subset.
		if fs, ps := fused.Fusion().Stats(), plain.Fusion().Stats(); fs.Requests != ps.Requests || fs.Fragments != ps.Fragments {
			t.Fatalf("memo DAGs diverge: fused %+v, unfused %+v", fs, ps)
		}
	})
}
