package workload_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"wpinq/internal/graph"
	"wpinq/internal/mcmc"
	"wpinq/internal/workload"
)

// pushCounter is the propagation odometer both executors' inputs expose.
type pushCounter interface {
	Pushes() uint64
}

// fuseTrace is one recorded MCMC walk: the per-step decision stream
// ('A'ccepted, 'R'ejected, 'I'nvalid), the per-step scores, the final
// edge list, and the propagation counters.
type fuseTrace struct {
	decisions   string
	scores      []float64
	edges       string
	inputPushes uint64 // root input Push calls during the walk
	memoPushes  uint64 // fragment batch deliveries during the walk
	stats       mcmc.Stats
}

// runFuseTrace measures tbi+tbd+jdd+wedges once, attaches them to a
// fused or unfused plan on the given layout, and drives a seeded
// 1500-step transactional MCMC walk, recording everything comparable.
func runFuseTrace(t *testing.T, fits []workload.Measured, shards, cutoff int, fuse bool, steps int) fuseTrace {
	t.Helper()
	const eps = 1.0
	// Walk from a random start toward the measurements, like real
	// synthesis: proposals then improve the fit often enough to exercise
	// the Commit path, not just Abort.
	g, err := graph.ErdosRenyi(36, 100, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ := fusePlan(t, fits, shards, cutoff, fuse, eps, 23)

	// NewGraphState pushes the initial edge dataset itself; pushing it
	// again here would hold every edge at weight 2 in the dataflow while
	// swaps move +/-1, stranding removed edges at weight 1 — state then
	// grows monotonically with the walk instead of staying degree-bounded.
	state := mcmc.NewGraphState(g, p.Input())
	if !state.Transactional() {
		t.Fatalf("fuse=%v shards=%d: fused DAG input does not speak the txn protocol", fuse, shards)
	}

	counter, ok := p.Input().(pushCounter)
	if !ok {
		t.Fatalf("plan input %T has no Pushes counter", p.Input())
	}
	basePushes := counter.Pushes()
	baseMemo := p.Fusion().Pushes()

	var decisions strings.Builder
	var scores []float64
	runner, err := mcmc.NewRunner(state, p.Scorer(), mcmc.Config{Pow: 0.05},
		rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	// Run step-by-step so the decision stream distinguishes rejected
	// from invalid (Stats only aggregates them).
	st := mcmc.Stats{Steps: steps}
	for i := 0; i < steps; i++ {
		before := counter.Pushes()
		accepted := runner.Step()
		switch {
		case accepted:
			st.Accepted++
			decisions.WriteByte('A')
		case counter.Pushes() != before:
			st.Rejected++
			decisions.WriteByte('R')
		default:
			st.Invalid++
			decisions.WriteByte('I')
		}
		scores = append(scores, runner.Score())
	}
	st.FinalScore = runner.Score()

	final := state.Graph().EdgeList()
	sort.Slice(final, func(i, j int) bool {
		if final[i].Src != final[j].Src {
			return final[i].Src < final[j].Src
		}
		return final[i].Dst < final[j].Dst
	})
	var sb strings.Builder
	for _, e := range final {
		fmt.Fprintf(&sb, "%d-%d;", e.Src, e.Dst)
	}
	return fuseTrace{
		decisions:   decisions.String(),
		scores:      scores,
		edges:       sb.String(),
		inputPushes: counter.Pushes() - basePushes,
		memoPushes:  p.Fusion().Pushes() - baseMemo,
		stats:       st,
	}
}

// TestFusedTraceMatchesUnfused drives the same seeded 1500-step MCMC
// walk through a fused plan and a per-workload-pipeline plan over
// tbi+tbd+jdd+wedges and requires byte-identical decision streams,
// byte-identical final edge lists, step scores within 1e-9, and the
// tentpole's cost metric: each proposal costs exactly one propagation
// through the root input, and the fused DAG delivers strictly fewer
// fragment batches than the sum of the unfused pipelines.
func TestFusedTraceMatchesUnfused(t *testing.T) {
	const steps = 1500
	names := []string{"tbi", "tbd", "jdd", "wedges"}
	fits := measureFits(t, testGraph(t), names, 2, 1.0, 11)
	for _, l := range []struct {
		name   string
		shards int
		cutoff int
	}{
		{"serial", -1, 0},
		{"engine-3", 3, 0},
	} {
		l := l
		t.Run(l.name, func(t *testing.T) {
			t.Parallel()
			fused := runFuseTrace(t, fits, l.shards, l.cutoff, true, steps)
			plain := runFuseTrace(t, fits, l.shards, l.cutoff, false, steps)

			if fused.decisions != plain.decisions {
				i := 0
				for i < len(fused.decisions) && fused.decisions[i] == plain.decisions[i] {
					i++
				}
				t.Fatalf("decision streams diverge at step %d: fused %c, unfused %c (fused stats %+v, unfused %+v)",
					i, fused.decisions[i], plain.decisions[i], fused.stats, plain.stats)
			}
			if fused.edges != plain.edges {
				t.Fatalf("final edge lists differ after identical decision streams")
			}
			for i := range fused.scores {
				if !scoresClose(fused.scores[i], plain.scores[i]) {
					t.Fatalf("step %d: fused score %v, unfused %v", i, fused.scores[i], plain.scores[i])
				}
			}

			// One proposal, one propagation: the txn protocol pushes each
			// valid proposal's differences exactly once, on both plan forms.
			valid := uint64(fused.stats.Accepted + fused.stats.Rejected)
			if fused.inputPushes != valid {
				t.Errorf("fused plan: %d input pushes for %d valid proposals", fused.inputPushes, valid)
			}
			if plain.inputPushes != valid {
				t.Errorf("unfused plan: %d input pushes for %d valid proposals", plain.inputPushes, valid)
			}
			// The acceptance criterion: per-proposal fragment work scales
			// with the merged DAG, not with workload count. tbi, tbd, and
			// wedges all consume the paths join, so fusing must strictly
			// reduce delivered fragment batches for the same walk.
			if fused.memoPushes >= plain.memoPushes {
				t.Errorf("fused walk delivered %d fragment batches, unfused %d; fusion must propagate less",
					fused.memoPushes, plain.memoPushes)
			}
			t.Logf("%s: %d steps (%d accepted), input pushes %d, fragment batches fused=%d unfused=%d (%.2fx)",
				l.name, steps, fused.stats.Accepted, fused.inputPushes,
				fused.memoPushes, plain.memoPushes, float64(plain.memoPushes)/float64(fused.memoPushes))
		})
	}
}
