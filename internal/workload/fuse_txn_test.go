package workload_test

import (
	"math"
	"math/rand"
	"testing"

	"wpinq/internal/graph"
	"wpinq/internal/mcmc"
	"wpinq/internal/workload"
)

// snapshotsExact compares two collector snapshots bit-for-bit: after an
// abort, the fused DAG's state must be indistinguishable from a twin
// that never speculated, so float tolerance would hide undo-log bugs.
func snapshotsExact(t *testing.T, name string, got, want map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", name, len(got), len(want))
	}
	for k, w := range want {
		if gw, ok := got[k]; !ok || gw != w {
			t.Fatalf("%s: record %s = %v, want %v (bit-exact)", name, k, gw, w)
		}
	}
}

// FuzzFusedTxnDiamonds drives randomized Begin/Push/Commit-or-Abort
// cycles through the full 5-workload fused plan — whose fan-out diamonds
// (the shared paths and degrees fragments reconverging at binary joins)
// are exactly where transaction control events arrive along multiple
// paths — against a never-speculated twin that only sees the committed
// batches. Collected outputs must stay bit-identical, and the subject's
// incrementally maintained fit score must agree with a from-scratch
// recompute, across both executors.
func FuzzFusedTxnDiamonds(f *testing.F) {
	f.Add(int64(3), []byte{0, 1, 2, 3}, uint8(0))
	f.Add(int64(9), []byte{1, 1, 1, 0, 0, 0, 5, 4}, uint8(1))
	f.Add(int64(27), []byte{255, 254, 3}, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, ops []byte, layout uint8) {
		if len(ops) == 0 {
			t.Skip("no cycles")
		}
		if len(ops) > 64 {
			ops = ops[:64]
		}
		const (
			eps    = 1.0
			bucket = 2
		)
		shards, cutoff := -1, 0
		if layout%2 == 1 {
			shards, cutoff = 2, 0
		}
		g, err := graph.ErdosRenyi(14, 28, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Skip(err)
		}
		fits := measureFits(t, g, workload.Names(), bucket, eps, seed+1)

		subject, _, subjectCols := fusePlan(t, fits, shards, cutoff, true, eps, 23)
		twin, _, twinCols := fusePlan(t, fits, shards, cutoff, true, eps, 23)
		subject.Input().PushDataset(graph.SymmetricEdges(g))
		twin.Input().PushDataset(graph.SymmetricEdges(g))

		txn, ok := subject.Input().(mcmc.TxnInput)
		if !ok {
			t.Fatalf("fused plan input %T does not implement mcmc.TxnInput", subject.Input())
		}

		rng := rand.New(rand.NewSource(seed + 2))
		edges := g.EdgeList()
		for _, op := range ops {
			ei, ej := rng.Intn(len(edges)), rng.Intn(len(edges))
			if ei == ej {
				continue
			}
			a, b := edges[ei].Src, edges[ei].Dst
			c, d := edges[ej].Src, edges[ej].Dst
			if op&2 != 0 {
				c, d = d, c
			}
			if a == d || c == b || a == c || b == d || g.HasEdge(a, d) || g.HasEdge(c, b) {
				continue
			}
			diff := swapDiffs(a, b, c, d)
			txn.Begin()
			txn.Push(diff)
			if op&1 == 0 {
				txn.Commit()
				twin.Input().Push(diff)
				g.RemoveEdge(a, b)
				g.RemoveEdge(c, d)
				g.AddEdge(a, d)
				g.AddEdge(c, b)
				edges[ei] = graph.Edge{Src: a, Dst: d}
				edges[ej] = graph.Edge{Src: c, Dst: b}
			} else {
				txn.Abort()
			}
		}

		for i := range subjectCols {
			ssnap, err := subjectCols[i].Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			tsnap, err := twinCols[i].Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			snapshotsExact(t, fits[i].Workload.Name, ssnap, tsnap)
		}

		// Aborted speculation legitimately widens the subject's score
		// baseline (the sink keeps noise observations drawn for records
		// first explored in an aborted transaction — documented sink
		// semantics), so subject and twin scores are not comparable. The
		// subject's maintained score agreeing with a from-scratch
		// recompute is the invariant that catches undo corruption.
		maintained := subject.Scorer().Score()
		recomputed := subject.Scorer().Recompute()
		if math.Abs(maintained-recomputed) > 1e-9*(1+math.Abs(recomputed)) {
			t.Fatalf("maintained score %v, recompute says %v", maintained, recomputed)
		}

		// Probe: future propagation must be bit-identical too.
		if len(edges) > 1 {
			a, b := edges[0].Src, edges[0].Dst
			c, d := edges[1].Src, edges[1].Dst
			if a != d && c != b && a != c && b != d && !g.HasEdge(a, d) && !g.HasEdge(c, b) {
				diff := swapDiffs(a, b, c, d)
				subject.Input().Push(diff)
				twin.Input().Push(diff)
				for i := range subjectCols {
					ssnap, _ := subjectCols[i].Snapshot()
					tsnap, _ := twinCols[i].Snapshot()
					snapshotsExact(t, "probe "+fits[i].Workload.Name, ssnap, tsnap)
				}
			}
		}
	})
}
