package workload_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"wpinq/internal/engine"
	"wpinq/internal/graph"
	"wpinq/internal/mcmc"
)

// updateGolden rewrites the committed golden trace files from this run.
// The goldens are the pooled-vs-unpooled twin of the memory-model work:
// they were generated before buffer pooling and record interning landed,
// so a pooled hot path that perturbs a single accept/reject decision, an
// emitted record, or a float accumulation order fails these tests.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden MCMC trace files")

// goldenNames are the workloads the golden walks fit: the same
// motif-free set the fused-vs-unfused differential suite traces.
// motif-star4's embedding chain multiplies per-step work by ~d^3 and
// would push a 1500-step walk past any sane test budget without adding
// operator coverage (its joins and group-bys are the ones tbi/tbd/jdd
// already exercise).
var goldenNames = []string{"tbi", "tbd", "jdd", "wedges"}

// goldenTrace is the serialized form of a fuseTrace. Scores are compared
// to 1e-9 relative (construction-order float drift); everything else is
// exact.
type goldenTrace struct {
	Decisions   string    `json:"decisions"`
	Scores      []float64 `json:"scores"`
	Edges       string    `json:"edges"`
	InputPushes uint64    `json:"input_pushes"`
	MemoPushes  uint64    `json:"memo_pushes"`
}

// TestGoldenTrace pins the full seeded 1500-step fused 5-workload walk
// against committed trace files on the two layouts that are
// bit-reproducible across processes: the serial executor and the
// single-shard engine. (Multi-shard engines route by a per-process hash
// seed, so their accumulation order is reproducible only in-process; the
// engine-3 coverage is TestEngine3MatchesSerialForcedWalk below.)
func TestGoldenTrace(t *testing.T) {
	const steps = 1500
	fits := measureFits(t, testGraph(t), goldenNames, 2, 1.0, 11)
	for _, l := range []struct {
		name   string
		shards int
		cutoff int
	}{
		{"serial", -1, 0},
		{"engine-1", 1, engine.DefaultSerialCutoff},
	} {
		l := l
		t.Run(l.name, func(t *testing.T) {
			tr := runFuseTrace(t, fits, l.shards, l.cutoff, true, steps)
			got := goldenTrace{
				Decisions:   tr.decisions,
				Scores:      tr.scores,
				Edges:       tr.edges,
				InputPushes: tr.inputPushes,
				MemoPushes:  tr.memoPushes,
			}
			path := filepath.Join("testdata", "golden_trace_"+l.name+".json")
			if *updateGolden {
				b, err := json.MarshalIndent(got, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d steps, %d accepted)", path, steps, tr.stats.Accepted)
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			var want goldenTrace
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatal(err)
			}
			if got.Decisions != want.Decisions {
				i := 0
				for i < len(got.Decisions) && i < len(want.Decisions) && got.Decisions[i] == want.Decisions[i] {
					i++
				}
				t.Fatalf("decision stream diverges from golden at step %d", i)
			}
			if got.Edges != want.Edges {
				t.Fatalf("final edge list differs from golden after identical decisions")
			}
			if len(got.Scores) != len(want.Scores) {
				t.Fatalf("score count %d, golden %d", len(got.Scores), len(want.Scores))
			}
			for i := range got.Scores {
				if !scoresClose(got.Scores[i], want.Scores[i]) {
					t.Fatalf("step %d: score %v, golden %v", i, got.Scores[i], want.Scores[i])
				}
			}
			if got.InputPushes != want.InputPushes {
				t.Errorf("input pushes %d, golden %d", got.InputPushes, want.InputPushes)
			}
			if got.MemoPushes != want.MemoPushes {
				t.Errorf("fragment batch deliveries %d, golden %d", got.MemoPushes, want.MemoPushes)
			}
		})
	}
}

// TestEngine3MatchesSerialForcedWalk covers the layout the golden files
// cannot: a genuinely parallel three-shard engine, whose per-process
// routing seed makes its accumulation order reproducible only
// in-process. Both executors are driven through the same deterministic
// proposal sequence with a forced commit/abort alternation (no
// float-dependent branching), and after the walk every workload's
// collected output weights must agree to float tolerance.
//
// Scores are deliberately not compared across executors: a sink's L1
// permanently includes |m(x)| for every record it has ever observed,
// and executors with different batch granularity explore different
// transient records (a record whose net weight cancels within one
// executor's batch never reaches the sink there, but does on the
// other). The maintained state — what pooling and packed encodings
// could corrupt — is the snapshot, and that must match.
func TestEngine3MatchesSerialForcedWalk(t *testing.T) {
	const steps = 400
	fits := measureFits(t, testGraph(t), goldenNames, 2, 1.0, 11)

	run := func(shards, cutoff int) (snaps []map[string]float64, edges string) {
		g, err := graph.ErdosRenyi(36, 100, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		p, _, cols := fusePlan(t, fits, shards, cutoff, true, 1.0, 23)
		state := mcmc.NewGraphState(g, p.Input()) // pushes the initial dataset itself
		rng := rand.New(rand.NewSource(99))
		valid := 0
		for valid < steps {
			prop, ok := state.Propose(rng)
			if !ok {
				continue
			}
			valid++
			state.Speculate(prop)
			if valid%2 == 0 {
				state.Commit()
			} else {
				state.Abort(prop)
			}
		}
		for _, c := range cols {
			snap, err := c.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, snap)
		}
		final := state.Graph().EdgeList()
		sort.Slice(final, func(i, j int) bool {
			if final[i].Src != final[j].Src {
				return final[i].Src < final[j].Src
			}
			return final[i].Dst < final[j].Dst
		})
		var sb strings.Builder
		for _, e := range final {
			fmt.Fprintf(&sb, "%d-%d;", e.Src, e.Dst)
		}
		return snaps, sb.String()
	}

	serialSnaps, serialEdges := run(-1, 0)
	engSnaps, engEdges := run(3, 0)
	if serialEdges != engEdges {
		t.Fatalf("final edge lists differ: the forced proposal sequence diverged")
	}
	for i := range serialSnaps {
		diffMaps(t, i, engSnaps[i], serialSnaps[i])
	}
}
