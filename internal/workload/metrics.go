package workload

import (
	"wpinq/internal/graph"
	"wpinq/internal/incremental"
	"wpinq/internal/obs"
	"wpinq/internal/weighted"
)

// Plan-root metrics, labeled by executor ("serial" or "sharded"). The
// root is the right tap: the sharded engine internally re-pushes each
// batch once per shard feed, so instrumenting the executors' own Push
// would count implementation fan-out, not dataflow input. Pushes,
// batch sizes, and transaction outcomes are recorded per root delivery
// — one counter bump and one histogram observation per MCMC proposal.
var (
	planPushes = obs.Default.CounterVec("wpinq_plan_pushes_total",
		"Edge-difference batches pushed into plan roots.", "executor")
	planBatchSize = obs.Default.HistogramVec("wpinq_plan_push_batch_size",
		"Edge-difference records per plan-root push (deltas, or dataset size for bulk loads).",
		obs.SizeBuckets(24), "executor")
	planTxn = obs.Default.CounterVec("wpinq_plan_txn_total",
		"Plan-root transaction control events.", "executor", "op")
)

// planInput is what both executors' concrete inputs provide: the
// dataflow entry points, the transactional protocol, and the push
// counter. (*incremental.Input[graph.Edge] and
// *engine.Input[graph.Edge] both satisfy it.)
type planInput interface {
	Input
	Begin()
	Commit()
	Abort()
	Pushes() uint64
}

// obsInput decorates a plan's root input with metrics. It forwards the
// full planInput surface, so plans keep satisfying mcmc.TxnInput (the
// transactional scoring protocol engages exactly as before) and tests
// that read Pushes() through the plan input still see the executor's
// own counter.
type obsInput struct {
	in     planInput
	push   obs.Counter
	batch  obs.Histogram
	begin  obs.Counter
	commit obs.Counter
	abort  obs.Counter
}

func newObsInput(in planInput, executor string) *obsInput {
	return &obsInput{
		in:     in,
		push:   planPushes.With(executor),
		batch:  planBatchSize.With(executor),
		begin:  planTxn.With(executor, "begin"),
		commit: planTxn.With(executor, "commit"),
		abort:  planTxn.With(executor, "abort"),
	}
}

func (o *obsInput) Push(batch []incremental.Delta[graph.Edge]) {
	o.push.Inc()
	o.batch.Observe(float64(len(batch)))
	o.in.Push(batch)
}

func (o *obsInput) PushDataset(d *weighted.Dataset[graph.Edge]) {
	o.push.Inc()
	o.batch.Observe(float64(d.Len()))
	o.in.PushDataset(d)
}

func (o *obsInput) Begin()  { o.begin.Inc(); o.in.Begin() }
func (o *obsInput) Commit() { o.commit.Inc(); o.in.Commit() }
func (o *obsInput) Abort()  { o.abort.Inc(); o.in.Abort() }

// Pushes reports the underlying executor input's delivery counter.
func (o *obsInput) Pushes() uint64 { return o.in.Pushes() }
