package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The process-wide registry. Built-in workloads register from this
// package's init (builtin.go); experiments or extensions may register
// more before any measurement or fit is built.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Workload)
)

// Register adds a workload to the registry. Names must be non-empty,
// consist of lowercase letters, digits, and dashes, and be unused.
func Register(w Workload) error {
	if err := checkName(w.Name); err != nil {
		return err
	}
	if w.impl == nil {
		return fmt.Errorf("workload: Register(%q): built without Define", w.Name)
	}
	if w.Uses <= 0 {
		return fmt.Errorf("workload: Register(%q): Uses must be positive, got %d", w.Name, w.Uses)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[w.Name]; ok {
		return fmt.Errorf("workload: %q already registered", w.Name)
	}
	registry[w.Name] = w
	return nil
}

// MustRegister is Register, panicking on error (init-time use).
func MustRegister(w Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// Get resolves a workload by name.
func Get(name string) (Workload, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload %q (registered: %s)",
			name, strings.Join(namesLocked(), ", "))
	}
	return w, nil
}

// Names returns every registered workload name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered workload, sorted by name.
func All() []Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Workload, 0, len(registry))
	for _, name := range namesLocked() {
		out = append(out, registry[name])
	}
	return out
}

// Resolve maps names to workloads, rejecting unknown names and
// duplicates. It is the one validation path shared by synth.Config, the
// service API, and the CLIs.
func Resolve(names []string) ([]Workload, error) {
	out := make([]Workload, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("workload: %q listed twice", name)
		}
		seen[name] = true
		w, err := Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// ParseList splits a comma-separated workload list ("tbi,wedges"),
// trims whitespace, drops empty items, and validates every name against
// the registry.
func ParseList(s string) ([]string, error) {
	var names []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		names = append(names, part)
	}
	if _, err := Resolve(names); err != nil {
		return nil, err
	}
	return names, nil
}

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("workload: name must be non-empty")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return fmt.Errorf("workload: name %q: want lowercase letters, digits, and dashes", name)
		}
	}
	return nil
}
