package workload_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"wpinq/internal/budget"
	"wpinq/internal/core"
	"wpinq/internal/graph"
	"wpinq/internal/queries"
	"wpinq/internal/workload"
)

func TestBuiltinsRegistered(t *testing.T) {
	names := workload.Names()
	for _, want := range []string{"jdd", "star4-by-degree", "tbd", "tbi", "wedges"} {
		if _, err := workload.Get(want); err != nil {
			t.Errorf("built-in %q missing: %v (registered: %v)", want, err, names)
		}
	}
	if !reflect.DeepEqual(names, []string{"jdd", "star4-by-degree", "tbd", "tbi", "wedges"}) {
		t.Errorf("Names() = %v, want the sorted built-ins", names)
	}
	// Registered use counts match the paper's privacy multipliers.
	uses := map[string]int{"tbi": 4, "tbd": 9, "jdd": 4, "wedges": 2, "star4-by-degree": 7}
	for name, want := range uses {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Uses != want {
			t.Errorf("%s.Uses = %d, want %d", name, w.Uses, want)
		}
	}
}

func TestRegisterRejectsBadWorkloads(t *testing.T) {
	if err := workload.Register(workload.Workload{Name: "tbi"}); err == nil {
		t.Error("re-registering tbi accepted")
	}
	if err := workload.Register(workload.Workload{Name: "Bad Name"}); err == nil {
		t.Error("invalid name accepted")
	}
	if err := workload.Register(workload.Workload{Name: "no-impl", Uses: 1}); err == nil {
		t.Error("workload without Define accepted")
	}
}

func TestResolveAndParseList(t *testing.T) {
	if _, err := workload.Resolve([]string{"tbi", "tbi"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := workload.Resolve([]string{"nope"}); err == nil {
		t.Error("unknown name accepted")
	}
	got, err := workload.ParseList(" tbi, wedges ,")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"tbi", "wedges"}) {
		t.Errorf("ParseList = %v", got)
	}
	if _, err := workload.ParseList("tbi,nope"); err == nil {
		t.Error("ParseList accepted an unknown name")
	}
	if empty, err := workload.ParseList(" "); err != nil || empty != nil {
		t.Errorf("ParseList(blank) = %v, %v; want nil, nil", empty, err)
	}
}

// TestMeasureChargesRegisteredUses pins the contract between a
// workload's registered use count and the budget its measurement
// actually charges: a source sized exactly to Uses*eps succeeds, and
// one sized just below fails.
func TestMeasureChargesRegisteredUses(t *testing.T) {
	g := testGraph(t)
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			eps := 0.5
			exact := budget.NewSource("edges", float64(w.Uses)*eps*(1+1e-9))
			edges := core.FromDataset(graph.SymmetricEdges(g), exact)
			if _, err := w.Measure(edges, 2, eps, rand.New(rand.NewSource(1))); err != nil {
				t.Fatalf("measurement failed on an exactly-sized budget: %v", err)
			}
			short := budget.NewSource("edges", float64(w.Uses)*eps*(1-1e-6))
			edges = core.FromDataset(graph.SymmetricEdges(g), short)
			if _, err := w.Measure(edges, 2, eps, rand.New(rand.NewSource(1))); err == nil {
				t.Fatal("measurement succeeded on an undersized budget: registered Uses understates the plan")
			}
		})
	}
}

func TestHistogramRoundTripAndTypedGet(t *testing.T) {
	g := testGraph(t)
	w, err := workload.Get("tbd")
	if err != nil {
		t.Fatal(err)
	}
	src := budget.NewSource("edges", 100)
	edges := core.FromDataset(graph.SymmetricEdges(g), src)
	fit, err := w.Measure(edges, 2, 1.0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fit.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("tbd measurement released nothing")
	}
	for i := 1; i < len(entries); i++ {
		if string(entries[i-1].Key) >= string(entries[i].Key) {
			t.Fatalf("entries not in canonical key order: %s >= %s", entries[i-1].Key, entries[i].Key)
		}
	}
	// Typed get through the erased interface returns the released value.
	for _, e := range entries[:3] {
		got, err := fit.Hist.Get(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if got != e.Count {
			t.Errorf("Get(%s) = %v, want %v", e.Key, got, e.Count)
		}
	}
	// Load(Entries()) reproduces the histogram: distance zero to itself,
	// positive to a perturbed copy.
	back, err := w.Load(entries, 2, 1.0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := fit.Hist.Distance(back.Hist)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("distance to own round trip = %v, want 0", d)
	}
	perturbed := append([]workload.Entry(nil), entries...)
	perturbed[0].Count += 2.5
	moved, err := w.Load(perturbed, 2, 1.0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if d, err = fit.Hist.Distance(moved.Hist); err != nil || math.Abs(d-2.5) > 1e-12 {
		t.Errorf("distance to perturbed copy = %v (%v), want 2.5", d, err)
	}
	// Keys that never occurred decode fine and draw memoized noise.
	key, _ := json.Marshal(queries.SortTriple(91, 92, 93))
	v1, err := fit.Hist.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if v2, _ := fit.Hist.Get(key); v1 != v2 {
		t.Errorf("lazy noise not memoized: %v then %v", v1, v2)
	}
	if _, err := fit.Hist.Get(json.RawMessage(`"not-a-triple"`)); err == nil ||
		!strings.Contains(err.Error(), "decoding") {
		t.Errorf("malformed key accepted: %v", err)
	}
}
