package workload_test

import (
	"math/rand"
	"testing"

	"wpinq/internal/budget"
	"wpinq/internal/core"
	"wpinq/internal/graph"
	"wpinq/internal/mcmc"
	"wpinq/internal/workload"
)

// TestPlanInputsAreTransactional pins the wire-through: every plan form
// (serial reference engine, auto-sharded executor, explicit shards)
// exposes an input implementing mcmc.TxnInput, so Phase 2 synthesis
// scores proposals with one propagation per rejected step on whichever
// executor the configuration selects.
func TestPlanInputsAreTransactional(t *testing.T) {
	for _, shards := range []int{-1, 0, 1, 3} {
		p := workload.NewPlan(shards)
		w, err := workload.Get("tbi")
		if err != nil {
			t.Fatal(err)
		}
		// Attach a real pipeline so the transactional protocol has nodes
		// to traverse, then couple the sampler.
		rng := rand.New(rand.NewSource(5))
		g, err := graph.ErdosRenyi(20, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		src := budget.NewSource("edges", float64(w.Uses)*(1+1e-9))
		edges := core.FromDataset(graph.SymmetricEdges(g), src)
		m, err := w.Measure(edges, 0, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Attach(p, 1); err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Input().(mcmc.TxnInput); !ok {
			t.Errorf("shards=%d: plan input %T does not implement mcmc.TxnInput", shards, p.Input())
		}
		state := mcmc.NewGraphState(g, p.Input())
		if !state.Transactional() {
			t.Errorf("shards=%d: GraphState did not adopt the transactional protocol", shards)
		}
	}
}
