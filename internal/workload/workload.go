// Package workload is the registry that makes wPINQ's declarative pitch
// real for this repository: each analysis (a "workload") is defined
// exactly once — a name, a privacy use count, and builders for the three
// executions of its query plan — and every layer above (measurement,
// serialization, MCMC fitting, the curator service, the CLIs) resolves
// workloads by name instead of hard-coding a query trio.
//
// A workload's plan exists in three equivalent forms, mirroring the rest
// of the repository:
//
//   - a one-shot form over core.Collection, used to take the actual
//     differentially private measurement of a protected graph;
//   - an incremental pipeline over the serial reference engine
//     (wpinq/internal/incremental), used by MCMC to re-score a synthetic
//     graph after each edge swap; and
//   - the same pipeline over the sharded parallel executor
//     (wpinq/internal/engine).
//
// The result histogram is type-erased behind the Histogram interface
// (typed get, distance, canonical serialization), so workloads with
// heterogeneous record types (Unit counts, degree triples, motif degree
// profiles, ...) compose in one measurement set and one fit plan.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"wpinq/internal/core"
	"wpinq/internal/engine"
	"wpinq/internal/graph"
	"wpinq/internal/incremental"
	"wpinq/internal/plan"
	"wpinq/internal/weighted"
)

// Input is the dataflow entry point a fit plan exposes: it accepts the
// edge differences of a proposed swap. Both executors' inputs satisfy
// it, and it is structurally identical to mcmc.Input, so a Plan's input
// plugs straight into mcmc.NewGraphState. Both concrete inputs also
// implement mcmc.TxnInput (Begin/Commit/Abort), so the sampler scores
// proposals transactionally — one propagation per proposal, rejected or
// not — on every plan this package builds, in either plan form.
type Input interface {
	Push(batch []incremental.Delta[graph.Edge])
	PushDataset(d *weighted.Dataset[graph.Edge])
}

// Entry is one record of a released histogram in canonical form: the
// record serialized as JSON plus its noisy count. Entry lists returned
// by Histogram.Entries are sorted bytewise by key, so identical
// histograms serialize to identical bytes (the measurement store
// content-addresses releases by those bytes).
type Entry struct {
	Key   json.RawMessage `json:"k"`
	Count float64         `json:"c"`
}

// Histogram is the type-erased view of one workload's released
// histogram (a core.Histogram[T] for the workload's record type T).
type Histogram interface {
	// Len returns the number of materialized records.
	Len() int
	// Get returns the released noisy count for the record encoded by
	// key (the same JSON form Entries uses). Unseen records draw fresh
	// memoized noise, exactly like core.Histogram.Get.
	Get(key json.RawMessage) (float64, error)
	// Distance returns the L1 distance between this histogram's
	// materialized records and other's, over the union of their keys.
	// It inspects only materialized records (no fresh noise draws).
	Distance(other Histogram) (float64, error)
	// Entries returns the materialized (key, count) pairs sorted
	// bytewise by key: the canonical serialization.
	Entries() ([]Entry, error)
}

// Measured couples a workload's released histogram with the parameters
// it was taken under. The bucket travels with the measurement because
// the fit pipeline must bucket identically to the released records or
// MCMC would fit fresh noise (see synth's Figure 3 discussion).
type Measured struct {
	Workload Workload
	Bucket   int
	Hist     Histogram
}

// Entries returns the canonical serialized records of the measurement.
func (m Measured) Entries() ([]Entry, error) { return m.Hist.Entries() }

// Attach builds the workload's fit pipeline on the plan's executor,
// terminates it in a NoisyCountSink against the released histogram, and
// registers the sink with the plan's scorer. eps is the privacy
// parameter the measurement was taken with.
func (m Measured) Attach(p *Plan, eps float64) error {
	return m.Workload.impl.attach(p, m.Workload.Name, m.Hist, m.Bucket, eps)
}

// AttachWithDomain is Attach with an explicit sink domain: keys lists
// the records the sink should materialize up front, in order, as
// canonical JSON (the form ObservedKeys/Observations produce). The
// ordinary Attach derives its domain from the histogram's materialized
// records in sorted-key order; a resumed or re-anchored fit instead
// replays a previous sink's exact first-observation order, because the
// sink's L1 accumulator is order-sensitive and must match bit-for-bit.
func (m Measured) AttachWithDomain(p *Plan, eps float64, keys []json.RawMessage) error {
	return m.Workload.impl.attachDomain(p, m.Workload.Name, m.Hist, m.Bucket, eps, keys)
}

// Reseed returns a copy of the measurement whose histogram draws lazy
// noise for never-materialized records from rng instead of sharing (and
// consuming) the original's noise stream. Materialized released records
// are copied exactly. Replica-exchange synthesis gives each concurrent
// chain its own reseeded copy, so chains neither race on the shared
// noise memoization nor perturb one another's draws.
func (m Measured) Reseed(eps float64, rng *rand.Rand) (Measured, error) {
	entries, err := m.Hist.Entries()
	if err != nil {
		return Measured{}, fmt.Errorf("workload %s: %w", m.Workload.Name, err)
	}
	return m.Workload.Load(entries, m.Bucket, eps, rng)
}

// Collected is a type-erased collector over one workload's pipeline,
// used by equivalence tests and diagnostics.
type Collected interface {
	// Snapshot returns the current materialized output as canonical
	// key -> weight.
	Snapshot() (map[string]float64, error)
}

// Workload is one registered analysis. The zero value is invalid; build
// workloads with Define and register them with Register/MustRegister.
type Workload struct {
	// Name is the registry key: lowercase letters, digits, and dashes.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Uses is the privacy multiplier: the number of times the plan uses
	// the protected edge dataset, so a measurement costs Uses*eps.
	Uses int
	// Bucketed reports whether the degree bucket width parameter
	// changes the query (e.g. TbD's floor(d/bucket) grouping).
	Bucketed bool

	impl impl
}

// impl is the type-erased implementation of a workload's three plan
// forms, provided by Define.
type impl interface {
	measure(edges *core.Collection[graph.Edge], bucket int, eps float64, rng *rand.Rand) (Histogram, error)
	load(entries []Entry, eps float64, rng *rand.Rand) (Histogram, error)
	attach(p *Plan, name string, h Histogram, bucket int, eps float64) error
	attachDomain(p *Plan, name string, h Histogram, bucket int, eps float64, keys []json.RawMessage) error
	collect(p *Plan, bucket int) Collected
	exact(g *graph.Graph, bucket int) (map[string]float64, error)
}

// normBucket canonicalizes the bucket parameter: workloads that ignore
// it record 0, so measurements serialize identically whatever the
// caller passed.
func (w Workload) normBucket(bucket int) int {
	if !w.Bucketed || bucket <= 1 {
		return 0
	}
	return bucket
}

// Measure takes the workload's differentially private measurement of
// the protected edge collection, charging Uses*eps of the collection's
// budget.
func (w Workload) Measure(edges *core.Collection[graph.Edge], bucket int, eps float64, rng *rand.Rand) (Measured, error) {
	if w.impl == nil {
		return Measured{}, fmt.Errorf("workload: %q has no implementation", w.Name)
	}
	b := w.normBucket(bucket)
	h, err := w.impl.measure(edges, b, eps, rng)
	if err != nil {
		return Measured{}, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return Measured{Workload: w, Bucket: b, Hist: h}, nil
}

// Load reconstructs a previously released measurement from its
// canonical entries (the deserialization path). Unseen records continue
// to draw fresh memoized noise at eps.
func (w Workload) Load(entries []Entry, bucket int, eps float64, rng *rand.Rand) (Measured, error) {
	if w.impl == nil {
		return Measured{}, fmt.Errorf("workload: %q has no implementation", w.Name)
	}
	h, err := w.impl.load(entries, eps, rng)
	if err != nil {
		return Measured{}, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return Measured{Workload: w, Bucket: w.normBucket(bucket), Hist: h}, nil
}

// Collect builds the workload's pipeline on the plan's executor and
// terminates it in a materializing collector, for tests and inspection.
func (w Workload) Collect(p *Plan, bucket int) Collected {
	return w.impl.collect(p, w.normBucket(bucket))
}

// Exact evaluates the workload's one-shot query over g without noise or
// privacy charge (the graph is treated as public) and returns the exact
// output weights, canonically keyed. This is the reference the
// executor-equivalence tests compare both engines against.
func (w Workload) Exact(g *graph.Graph, bucket int) (map[string]float64, error) {
	return w.impl.exact(g, w.normBucket(bucket))
}

// Plan is a fit pipeline under construction on one executor: the MCMC
// input root plus the scorer the attached sinks feed. Shards semantics
// match synth.Config.Shards: -1 selects the serial reference engine,
// 0 the sharded executor with one shard per CPU, >0 an explicit count.
//
// Every plan carries a plan.Memo: workloads that register fused
// builders request their pipeline fragments through it, so attaching
// several workloads to one fusing plan builds a single DAG that shares
// operator prefixes (NewPlan default). A non-fusing plan (NewPlanFused
// with fuse false) builds every workload its private pipeline — the
// pre-fusion behavior, kept as the differential baseline.
type Plan struct {
	serial *incremental.Input[graph.Edge]
	eng    *engine.Engine
	engIn  *engine.Input[graph.Edge]
	input  *obsInput // metrics decorator over the root input
	scorer *incremental.Scorer
	memo   *plan.Memo
}

// NewPlan returns an empty fusing plan on the selected executor. Attach
// every workload before pushing data through Input (both engines
// require subscriptions to complete before the first push).
func NewPlan(shards int) *Plan { return NewPlanFused(shards, true) }

// NewPlanFused is NewPlan with explicit control over prefix fusion:
// fuse false builds per-workload pipelines (the -fuse=false baseline).
func NewPlanFused(shards int, fuse bool) *Plan {
	p := &Plan{scorer: incremental.NewScorer(), memo: plan.New(fuse)}
	if shards < 0 {
		p.serial = incremental.NewInput[graph.Edge]()
		p.input = newObsInput(p.serial, "serial")
		return p
	}
	p.eng = engine.New(shards)
	p.engIn = engine.NewInput[graph.Edge](p.eng)
	p.input = newObsInput(p.engIn, "sharded")
	return p
}

// Fusion returns the plan's fusion memo: the fused DAG, sharing stats,
// and the per-fragment propagation counter.
func (p *Plan) Fusion() *plan.Memo { return p.memo }

// Input returns the plan's edge-difference entry point: the executor's
// root input behind a metrics decorator that still satisfies
// mcmc.TxnInput and exposes the executor's Pushes counter.
func (p *Plan) Input() Input { return p.input }

// Scorer returns the scorer aggregating every attached sink.
func (p *Plan) Scorer() *incremental.Scorer { return p.scorer }

// Engine returns the sharded executor backing the plan, or nil when the
// plan runs on the serial reference engine.
func (p *Plan) Engine() *engine.Engine { return p.eng }

// Observation is one attached sink's observation history: the workload
// it was attached under and its records in first-observation order,
// serialized as canonical JSON.
type Observation struct {
	Workload string            `json:"workload"`
	Keys     []json.RawMessage `json:"keys"`
}

// Observations returns every attached sink's observation history, in
// attach order. Feeding each entry's keys back through AttachWithDomain
// on a fresh plan rebuilds the sinks' released-value state exactly —
// the measurement half of a fit checkpoint.
func (p *Plan) Observations() ([]Observation, error) {
	var out []Observation
	var firstErr error
	p.scorer.Each(func(name string, s incremental.SinkScore) {
		if firstErr != nil {
			return
		}
		k, ok := s.(interface {
			ObservedKeys() ([]json.RawMessage, error)
		})
		if !ok {
			firstErr = fmt.Errorf("workload: sink for %q does not expose its observations", name)
			return
		}
		keys, err := k.ObservedKeys()
		if err != nil {
			firstErr = err
			return
		}
		out = append(out, Observation{Workload: name, Keys: keys})
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Builders supplies the three executions of one query plan for record
// type T. The bucket argument is the degree bucket width; workloads
// that do not use it receive 0 and must ignore it.
//
// SerialFused and EngineFused are optional memo-aware variants of
// Serial and Engine: they request reusable pipeline fragments through
// the plan's fusion memo (see wpinq/internal/plan and the Fused*
// builders in wpinq/internal/queries), so several workloads attached to
// one plan share their common operator prefixes. A workload without
// fused builders still works on every plan — it just never shares.
type Builders[T comparable] struct {
	// Query is the one-shot measurement form over core.Collection.
	Query func(edges *core.Collection[graph.Edge], bucket int) *core.Collection[T]
	// Serial is the incremental pipeline on the reference engine.
	Serial func(edges incremental.Source[graph.Edge], bucket int) incremental.Source[T]
	// Engine is the same pipeline on the sharded parallel executor.
	Engine func(edges engine.Source[graph.Edge], bucket int) engine.Source[T]
	// SerialFused is Serial requesting fragments through the memo.
	SerialFused func(m *plan.Memo, edges incremental.Source[graph.Edge], bucket int) incremental.Source[T]
	// EngineFused is Engine requesting fragments through the memo.
	EngineFused func(m *plan.Memo, edges engine.Source[graph.Edge], bucket int) engine.Source[T]
}

// Define couples a workload's metadata with its typed builders. The
// returned workload is ready to Register.
func Define[T comparable](w Workload, b Builders[T]) Workload {
	if b.Query == nil || b.Serial == nil || b.Engine == nil {
		panic(fmt.Sprintf("workload: Define(%q) requires all three builders", w.Name))
	}
	w.impl = builders[T]{b}
	return w
}

// builders adapts typed Builders to the type-erased impl interface.
type builders[T comparable] struct {
	b Builders[T]
}

func (bs builders[T]) measure(edges *core.Collection[graph.Edge], bucket int, eps float64, rng *rand.Rand) (Histogram, error) {
	h, err := core.NoisyCount(bs.b.Query(edges, bucket), eps, rng)
	if err != nil {
		return nil, err
	}
	return &typedHist[T]{h: h}, nil
}

func (bs builders[T]) load(entries []Entry, eps float64, rng *rand.Rand) (Histogram, error) {
	counts := make(map[T]float64, len(entries))
	for _, e := range entries {
		var x T
		if err := json.Unmarshal(e.Key, &x); err != nil {
			return nil, fmt.Errorf("decoding record %s: %w", e.Key, err)
		}
		counts[x] = e.Count
	}
	h, err := core.HistogramFromMaterialized(counts, eps, rng)
	if err != nil {
		return nil, err
	}
	return &typedHist[T]{h: h}, nil
}

// source builds the workload's pipeline on the plan's executor,
// preferring the fused builders (which share prefixes through the
// plan's memo) when the workload registered them. Engine streams
// implement incremental.Source, so both executors return the same
// stream type and terminate in the same sinks.
func (bs builders[T]) source(p *Plan, bucket int) incremental.Source[T] {
	if p.serial != nil {
		if bs.b.SerialFused != nil {
			return bs.b.SerialFused(p.memo, p.serial, bucket)
		}
		return bs.b.Serial(p.serial, bucket)
	}
	if bs.b.EngineFused != nil {
		return bs.b.EngineFused(p.memo, p.engIn, bucket)
	}
	return bs.b.Engine(p.engIn, bucket)
}

func (bs builders[T]) attach(p *Plan, name string, h Histogram, bucket int, eps float64) error {
	th, ok := h.(*typedHist[T])
	if !ok {
		return fmt.Errorf("workload: histogram has record type %T, want %T", h, &typedHist[T]{})
	}
	// Canonical (sorted-key) domain order: the sink accumulates its
	// initial L1 in domain order, so a map-ordered domain would make the
	// starting score — and with it the whole seeded MCMC trace — vary
	// between runs.
	domain := make([]T, 0, len(th.h.Materialized()))
	keys := make([]string, 0, cap(domain))
	for k := range th.h.Materialized() {
		key, err := json.Marshal(k)
		if err != nil {
			return fmt.Errorf("workload: encoding record %v: %w", k, err)
		}
		domain = append(domain, k)
		keys = append(keys, string(key))
	}
	sort.Sort(&domainByKey[T]{recs: domain, keys: keys})
	sink := incremental.NewNoisyCountSink[T](bs.source(p, bucket), th.h, domain, eps)
	p.scorer.AddNamed(name, sink)
	return nil
}

func (bs builders[T]) attachDomain(p *Plan, name string, h Histogram, bucket int, eps float64, keys []json.RawMessage) error {
	th, ok := h.(*typedHist[T])
	if !ok {
		return fmt.Errorf("workload: histogram has record type %T, want %T", h, &typedHist[T]{})
	}
	domain := make([]T, len(keys))
	for i, k := range keys {
		if err := json.Unmarshal(k, &domain[i]); err != nil {
			return fmt.Errorf("workload: decoding domain record %s: %w", k, err)
		}
	}
	sink := incremental.NewNoisyCountSink[T](bs.source(p, bucket), th.h, domain, eps)
	p.scorer.AddNamed(name, sink)
	return nil
}

// domainByKey sorts a sink domain by its records' canonical JSON keys.
type domainByKey[T comparable] struct {
	recs []T
	keys []string
}

func (s *domainByKey[T]) Len() int           { return len(s.recs) }
func (s *domainByKey[T]) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *domainByKey[T]) Swap(i, j int) {
	s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (bs builders[T]) collect(p *Plan, bucket int) Collected {
	return typedCollected[T]{c: incremental.Collect[T](bs.source(p, bucket))}
}

func (bs builders[T]) exact(g *graph.Graph, bucket int) (map[string]float64, error) {
	q := bs.b.Query(core.FromPublic(graph.SymmetricEdges(g)), bucket)
	return canonicalize(q.Snapshot())
}

// typedCollected adapts an incremental Collector to the Collected view.
type typedCollected[T comparable] struct {
	c *incremental.Collector[T]
}

func (tc typedCollected[T]) Snapshot() (map[string]float64, error) {
	return canonicalize(tc.c.Snapshot())
}

// canonicalize converts a typed weighted dataset to canonical
// key -> weight form.
func canonicalize[T comparable](d *weighted.Dataset[T]) (map[string]float64, error) {
	out := make(map[string]float64, d.Len())
	var err error
	d.Range(func(x T, w float64) {
		key, e := json.Marshal(x)
		if e != nil && err == nil {
			err = e
			return
		}
		out[string(key)] = w
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// typedHist implements Histogram over a core.Histogram[T].
type typedHist[T comparable] struct {
	h *core.Histogram[T]
}

func (t *typedHist[T]) Len() int { return len(t.h.Materialized()) }

func (t *typedHist[T]) Get(key json.RawMessage) (float64, error) {
	var x T
	if err := json.Unmarshal(key, &x); err != nil {
		return 0, fmt.Errorf("workload: decoding record %s: %w", key, err)
	}
	return t.h.Get(x), nil
}

func (t *typedHist[T]) Entries() ([]Entry, error) {
	mat := t.h.Materialized()
	out := make([]Entry, 0, len(mat))
	for x, c := range mat {
		key, err := json.Marshal(x)
		if err != nil {
			return nil, fmt.Errorf("workload: encoding record %v: %w", x, err)
		}
		out = append(out, Entry{Key: key, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return out, nil
}

func (t *typedHist[T]) Distance(other Histogram) (float64, error) {
	a, err := t.Entries()
	if err != nil {
		return 0, err
	}
	b, err := other.Entries()
	if err != nil {
		return 0, err
	}
	var l1 float64
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b):
			l1 += abs(a[i].Count)
			i++
		case i >= len(a):
			l1 += abs(b[j].Count)
			j++
		default:
			switch cmp := bytes.Compare(a[i].Key, b[j].Key); {
			case cmp < 0:
				l1 += abs(a[i].Count)
				i++
			case cmp > 0:
				l1 += abs(b[j].Count)
				j++
			default:
				l1 += abs(a[i].Count - b[j].Count)
				i, j = i+1, j+1
			}
		}
	}
	return l1, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
