// Command benchsmoke is the benchmark regression gate: it runs the
// MCMC-relevant benchmarks through `go test -bench -benchmem -json`,
// writes every parsed per-op metric to a JSON report (BENCH_mcmc.json
// in CI), and exits non-zero when a gated metric — ns/op, allocs/op,
// B/op, heapMB, or fragpushes/op — is more than -threshold times worse
// than the committed baseline.
//
// Usage:
//
//	go run ./tools/benchsmoke                  # compare against BENCH_baseline.json
//	go run ./tools/benchsmoke -update         # rewrite the baseline from this machine
//	go run ./tools/benchsmoke -bench 'BenchmarkRejectHeavy' -benchtime 3x
//	go run ./tools/benchsmoke -short          # CI profile: skips the 1e6-edge scale run
//	go run ./tools/benchsmoke -lint-clean     # require zero wpinqlint findings first (implied by -update)
//
// The committed baseline is a smoke threshold, not a precision
// measurement: single-iteration benchmark runs on shared CI machines are
// noisy, so the gate only catches gross regressions (the 2x default
// corresponds to, for example, reintroducing the second propagation per
// rejected MCMC proposal that the transactional protocol removed).
// Gating allocs/op and fragpushes/op alongside wall-clock catches the
// regressions a single-CPU box can't see in ns/op: per-step allocations
// and redundant fragment deliveries scale with hardware parallelism, so
// they are gated as counts, which are near-deterministic per run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

// gatedUnits are the per-op metrics compared against the baseline, in
// report order. Other units (accept-rate, ns/chainop, ...) are recorded
// in the report but informational only. B/op and heapMB gate the memory
// model alongside allocation counts: B/op catches a pooled buffer that
// silently grows per operation, heapMB (the scale benchmarks' measured
// high-water heap) catches footprint regressions that per-op metrics
// normalize away.
var gatedUnits = []string{"ns/op", "allocs/op", "B/op", "heapMB", "fragpushes/op"}

// report is the schema of both the baseline and the output file.
type report struct {
	// Benchmarks maps benchmark name (sub-benchmarks included,
	// GOMAXPROCS suffix stripped) to its per-op metrics by unit
	// ("ns/op", "allocs/op", ...).
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// UnmarshalJSON also accepts the legacy baseline schema, where each
// benchmark mapped to a bare ns/op number.
func (r *report) UnmarshalJSON(data []byte) error {
	var raw struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	r.Benchmarks = make(map[string]map[string]float64, len(raw.Benchmarks))
	for name, v := range raw.Benchmarks {
		var ns float64
		if err := json.Unmarshal(v, &ns); err == nil {
			r.Benchmarks[name] = map[string]float64{"ns/op": ns}
			continue
		}
		var units map[string]float64
		if err := json.Unmarshal(v, &units); err != nil {
			return fmt.Errorf("benchmark %s: %w", name, err)
		}
		r.Benchmarks[name] = units
	}
	return nil
}

// event is the subset of the `go test -json` stream the parser needs.
// Output chunks of one package are concatenated before line scanning:
// test2json flushes a benchmark's name and its result line as separate
// partial-line events (the name prints before the iterations run), so
// matching per event would drop results.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// resultRe matches a benchmark result line, e.g.
// "BenchmarkRejectHeavy/txn-2   5   1512424698 ns/op   320 B/op   4 allocs/op".
var resultRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// metricRe matches one "value unit" pair on a result line.
var metricRe = regexp.MustCompile(`(-?[0-9][0-9.eE+-]*)\s+([^\s]+)`)

func main() {
	bench := flag.String("bench", "BenchmarkRejectHeavy|BenchmarkChains|BenchmarkEngineShards|BenchmarkFusedChains|BenchmarkMillionEdge",
		"benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "benchtime passed to go test")
	short := flag.Bool("short", false, "pass -short to go test (skips the million-edge full-scale run)")
	pkgs := flag.String("pkgs", ".", "package pattern to benchmark")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline to compare against")
	outPath := flag.String("out", "BENCH_mcmc.json", "where to write this run's results")
	threshold := flag.Float64("threshold", 2.0, "fail when a gated metric exceeds baseline by this factor")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	lintClean := flag.Bool("lint-clean", false,
		"assert the repo is wpinqlint-clean before benchmarking (implied by -update: a baseline must not be cut from a tree violating the checked invariants)")
	flag.Parse()

	if *lintClean || *update {
		if err := assertLintClean(); err != nil {
			fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
			os.Exit(1)
		}
	}

	results, err := run(*bench, *benchtime, *pkgs, *short)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
		os.Exit(1)
	}
	if len(results.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchsmoke: no benchmark results matched %q\n", *bench)
		os.Exit(1)
	}
	if err := write(*outPath, results); err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
		os.Exit(1)
	}
	if *update {
		if err := write(*baselinePath, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchsmoke: baseline %s updated with %d benchmarks\n", *baselinePath, len(results.Benchmarks))
		return
	}

	baseline, err := read(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %v (run with -update to create it)\n", err)
		os.Exit(1)
	}
	failed := compare(baseline, results, *threshold, *short)
	if failed {
		os.Exit(1)
	}
}

// assertLintClean runs the wpinqlint invariant suite (standalone
// driver) over the module and fails if it reports anything: benchmark
// numbers measured on a tree that breaks the determinism, undo, or
// pooling invariants are not comparable to the baseline's.
func assertLintClean() error {
	cmd := exec.Command("go", "run", "./cmd/wpinqlint", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("wpinqlint findings block the benchmark gate:\n%s", out)
	}
	fmt.Println("benchsmoke: wpinqlint clean")
	return nil
}

// run executes the benchmarks and parses every per-op metric per
// benchmark name.
func run(bench, benchtime, pkgs string, short bool) (report, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", "-json"}
	if short {
		args = append(args, "-short")
	}
	cmd := exec.Command("go", append(args, pkgs)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return report{}, err
	}
	if err := cmd.Start(); err != nil {
		return report{}, err
	}
	streams := make(map[string]*bytes.Buffer)
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (toolchain chatter)
		}
		if ev.Action != "output" {
			continue
		}
		buf := streams[ev.Package]
		if buf == nil {
			buf = &bytes.Buffer{}
			streams[ev.Package] = buf
		}
		buf.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return report{}, err
	}
	if err := cmd.Wait(); err != nil {
		return report{}, fmt.Errorf("go test -bench: %w", err)
	}
	res := report{Benchmarks: make(map[string]map[string]float64)}
	for _, buf := range streams {
		lines := bufio.NewScanner(buf)
		lines.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for lines.Scan() {
			m := resultRe.FindStringSubmatch(lines.Text())
			if m == nil {
				continue
			}
			units := res.Benchmarks[m[1]]
			if units == nil {
				units = make(map[string]float64)
				res.Benchmarks[m[1]] = units
			}
			for _, pair := range metricRe.FindAllStringSubmatch(m[2], -1) {
				v, err := strconv.ParseFloat(pair[1], 64)
				if err != nil {
					continue
				}
				units[pair[2]] = v
			}
		}
	}
	return res, nil
}

// compare reports each benchmark's gated metrics against the baseline
// and returns whether any exceeded the threshold. A gated unit absent
// from the baseline (e.g. a legacy ns/op-only file) is informational
// until the baseline is regenerated with -update. A baseline benchmark
// that produced no result is a failure (a silently vanished benchmark
// would otherwise pass forever) — except under -short, where full-scale
// cases the baseline records from a complete run legitimately skip.
func compare(baseline, results report, threshold float64, short bool) bool {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		got, ok := results.Benchmarks[name]
		if !ok {
			if short {
				fmt.Printf("skip %s: in baseline but not run under -short\n", name)
				continue
			}
			fmt.Printf("FAIL %s: present in baseline but produced no result\n", name)
			failed = true
			continue
		}
		for _, unit := range gatedUnits {
			base, inBase := baseline.Benchmarks[name][unit]
			cur, inRun := got[unit]
			switch {
			case !inBase:
				continue
			case !inRun:
				fmt.Printf("FAIL %s: baseline has %s but the run produced none\n", name, unit)
				failed = true
			case base == 0:
				// A zero baseline admits no ratio; anything nonzero is a
				// regression from literally free.
				status := "ok  "
				if cur > 0 {
					status = "FAIL"
					failed = true
				}
				fmt.Printf("%s %s: %.0f %s vs baseline 0\n", status, name, cur, unit)
			default:
				ratio := cur / base
				status := "ok  "
				if ratio > threshold {
					status = "FAIL"
					failed = true
				}
				fmt.Printf("%s %s: %.0f %s vs baseline %.0f (%.2fx, limit %.2fx)\n",
					status, name, cur, unit, base, ratio, threshold)
			}
		}
	}
	for name := range results.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			fmt.Printf("note %s: not in baseline (add with -update)\n", name)
		}
	}
	return failed
}

func read(path string) (report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func write(path string, r report) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
